// Per-node membership state.
//
// Each node keeps its own view of the cluster it belongs to; the FDS and the
// inter-cluster forwarder consult this view for the node's role, the expected
// heartbeat sources, and the gateway structure. Views are updated by the
// formation protocol, by CH announcements, and by DCH takeover.
//
// Storage is copy-on-write: the ClusterView lives behind a
// shared_ptr<const ClusterView>, so centralized formation installs ONE view
// object per cluster shared by every member (a million-node world allocates
// per cluster, not per node), and a CH's roster snapshot adopted by k members
// is one allocation, not k. Mutators clone only when the view is actually
// shared and the change is real — every mutator starts with a no-change fast
// path, which also keeps steady-state FDS rounds allocation-free.

#pragma once

#include <memory>
#include <vector>

#include "cluster/roles.h"
#include "common/ids.h"

namespace cfds {

/// Nullable reference to a node's (immutable, possibly shared) cluster view.
/// Mimics the optional<ClusterView>& interface this accessor historically
/// returned: test with has_value()/bool, read through * and ->.
class ClusterRef {
 public:
  explicit ClusterRef(const ClusterView* view) : view_(view) {}

  [[nodiscard]] bool has_value() const { return view_ != nullptr; }
  explicit operator bool() const { return view_ != nullptr; }
  [[nodiscard]] const ClusterView& operator*() const { return *view_; }
  [[nodiscard]] const ClusterView* operator->() const { return view_; }

 private:
  const ClusterView* view_;
};

/// What one node believes about its own cluster.
class MembershipView {
 public:
  using ClusterViewPtr = std::shared_ptr<const ClusterView>;

  explicit MembershipView(NodeId self) : self_(self) {}

  [[nodiscard]] NodeId self() const { return self_; }

  [[nodiscard]] bool affiliated() const { return cluster_ != nullptr; }
  [[nodiscard]] ClusterRef cluster() const {
    return ClusterRef(cluster_.get());
  }

  /// The shared view object itself. Pointer equality between two nodes'
  /// cluster_ptr() proves their views identical without a deep compare
  /// (formation uses this to adopt prebuilt announced views).
  [[nodiscard]] const ClusterViewPtr& cluster_ptr() const { return cluster_; }

  /// Installs or replaces the cluster organization with a private copy.
  void set_cluster(ClusterView view) {
    cluster_ = std::make_shared<const ClusterView>(std::move(view));
  }
  /// Adopts an existing (shared) view object: one allocation serves every
  /// member the installer hands it to.
  void set_cluster(ClusterViewPtr view) { cluster_ = std::move(view); }
  void clear() { cluster_.reset(); }

  /// This node's current role.
  [[nodiscard]] Role role() const {
    return cluster_ ? cluster_->role_of(self_) : Role::kUnaffiliated;
  }

  [[nodiscard]] bool is_clusterhead() const {
    return cluster_ && cluster_->clusterhead == self_;
  }

  /// True if this node is the highest-ranked deputy (the CH-failure
  /// detection authority, Section 4.2).
  [[nodiscard]] bool is_primary_deputy() const {
    return cluster_ && !cluster_->deputies.empty() &&
           cluster_->deputies.front() == self_;
  }

  /// True if this node holds any deputy rank. All deputies collect digest
  /// evidence so that a lower rank inherits the same witness protection
  /// when the chain of command above it goes silent.
  [[nodiscard]] bool is_deputy() const {
    if (!cluster_) return false;
    for (NodeId d : cluster_->deputies) {
      if (d == self_) return true;
    }
    return false;
  }

  /// Nodes the CH expects to hear from during an FDS execution: all non-CH
  /// members of the cluster.
  [[nodiscard]] std::vector<NodeId> expected_members() const {
    return cluster_ ? cluster_->members : std::vector<NodeId>{};
  }

  /// Gateway links on which this node is the GW or a BGW, with its rank.
  struct LinkRole {
    const GatewayLink* link;
    std::size_t rank;  ///< 0 = GW, k >= 1 = rank-k BGW
  };
  [[nodiscard]] std::vector<LinkRole> my_links() const {
    std::vector<LinkRole> out;
    if (!cluster_) return out;
    for (const GatewayLink& link : cluster_->links) {
      if (auto rank = link.rank_of(self_)) out.push_back({&link, *rank});
    }
    return out;
  }

  /// Applies a DCH takeover: `deputy` becomes the CH, the failed CH is
  /// removed, remaining deputies shift up. No-op if not affiliated.
  void apply_takeover(NodeId deputy);

  /// Removes failed members from the view (after a health-status update).
  void remove_members(const std::vector<NodeId>& failed);

  /// Admits newly subscribed members (feature F5: unmarked heartbeats act as
  /// membership subscriptions).
  void admit_members(const std::vector<NodeId>& admitted);

  /// Replaces the member list with the clusterhead's authoritative snapshot
  /// (crash-recovery reconciliation); deputies no longer in the list are
  /// dropped. No-op if not affiliated (or if the snapshot changes nothing —
  /// the steady-state case for every per-epoch roster announcement).
  void sync_members(const std::vector<NodeId>& members);

  /// Records that the neighbouring cluster `neighbor` is now headed by
  /// `new_ch` (a gateway overheard its takeover update); future reports on
  /// that link are addressed to the new CH.
  void update_link_neighbor(ClusterId neighbor, NodeId new_ch);

 private:
  /// The view as privately mutable state: clones the shared object unless
  /// this node is its only holder (then mutates in place — the clone would
  /// be dead weight). Callers must have checked cluster_ != nullptr and
  /// that a real change follows.
  [[nodiscard]] ClusterView& mutate();

  // LINT-FINGERPRINT: members below must be covered (mixed or FP-EXEMPT'd)
  // in src/check/fingerprint.cpp — rule state-outside-fingerprint.
  NodeId self_;
  ClusterViewPtr cluster_;
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means
// membership state was added — mix it in src/check/fingerprint.cpp (or
// FP-EXEMPT it with a reason), then update the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(MembershipView) == 24,
              "MembershipView layout changed: update "
              "src/check/fingerprint.cpp, then this tripwire");
#endif

}  // namespace cfds
