// Per-node membership state.
//
// Each node keeps its own view of the cluster it belongs to; the FDS and the
// inter-cluster forwarder consult this view for the node's role, the expected
// heartbeat sources, and the gateway structure. Views are updated by the
// formation protocol, by CH announcements, and by DCH takeover.

#pragma once

#include <optional>
#include <vector>

#include "cluster/roles.h"
#include "common/ids.h"

namespace cfds {

/// What one node believes about its own cluster.
class MembershipView {
 public:
  explicit MembershipView(NodeId self) : self_(self) {}

  [[nodiscard]] NodeId self() const { return self_; }

  [[nodiscard]] bool affiliated() const { return cluster_.has_value(); }
  [[nodiscard]] const std::optional<ClusterView>& cluster() const {
    return cluster_;
  }

  /// Installs or replaces the cluster organization.
  void set_cluster(ClusterView view) { cluster_ = std::move(view); }
  void clear() { cluster_.reset(); }

  /// This node's current role.
  [[nodiscard]] Role role() const {
    return cluster_ ? cluster_->role_of(self_) : Role::kUnaffiliated;
  }

  [[nodiscard]] bool is_clusterhead() const {
    return cluster_ && cluster_->clusterhead == self_;
  }

  /// True if this node is the highest-ranked deputy (the CH-failure
  /// detection authority, Section 4.2).
  [[nodiscard]] bool is_primary_deputy() const {
    return cluster_ && !cluster_->deputies.empty() &&
           cluster_->deputies.front() == self_;
  }

  /// True if this node holds any deputy rank. All deputies collect digest
  /// evidence so that a lower rank inherits the same witness protection
  /// when the chain of command above it goes silent.
  [[nodiscard]] bool is_deputy() const {
    if (!cluster_) return false;
    for (NodeId d : cluster_->deputies) {
      if (d == self_) return true;
    }
    return false;
  }

  /// Nodes the CH expects to hear from during an FDS execution: all non-CH
  /// members of the cluster.
  [[nodiscard]] std::vector<NodeId> expected_members() const {
    return cluster_ ? cluster_->members : std::vector<NodeId>{};
  }

  /// Gateway links on which this node is the GW or a BGW, with its rank.
  struct LinkRole {
    const GatewayLink* link;
    std::size_t rank;  ///< 0 = GW, k >= 1 = rank-k BGW
  };
  [[nodiscard]] std::vector<LinkRole> my_links() const {
    std::vector<LinkRole> out;
    if (!cluster_) return out;
    for (const GatewayLink& link : cluster_->links) {
      if (auto rank = link.rank_of(self_)) out.push_back({&link, *rank});
    }
    return out;
  }

  /// Applies a DCH takeover: `deputy` becomes the CH, the failed CH is
  /// removed, remaining deputies shift up. No-op if not affiliated.
  void apply_takeover(NodeId deputy);

  /// Removes failed members from the view (after a health-status update).
  void remove_members(const std::vector<NodeId>& failed);

  /// Admits newly subscribed members (feature F5: unmarked heartbeats act as
  /// membership subscriptions).
  void admit_members(const std::vector<NodeId>& admitted);

  /// Replaces the member list with the clusterhead's authoritative snapshot
  /// (crash-recovery reconciliation); deputies no longer in the list are
  /// dropped. No-op if not affiliated.
  void sync_members(const std::vector<NodeId>& members);

  /// Records that the neighbouring cluster `neighbor` is now headed by
  /// `new_ch` (a gateway overheard its takeover update); future reports on
  /// that link are addressed to the new CH.
  void update_link_neighbor(ClusterId neighbor, NodeId new_ch);

 private:
  // LINT-FINGERPRINT: members below must be covered (mixed or FP-EXEMPT'd)
  // in src/check/fingerprint.cpp — rule state-outside-fingerprint.
  NodeId self_;
  std::optional<ClusterView> cluster_;
};

// Fingerprint tripwire (src/check/fingerprint.h): a layout change means
// membership state was added — mix it in src/check/fingerprint.cpp (or
// FP-EXEMPT it with a reason), then update the expected size.
#if defined(__x86_64__) && defined(__linux__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(MembershipView) == 96,
              "MembershipView layout changed: update "
              "src/check/fingerprint.cpp, then this tripwire");
#endif

}  // namespace cfds
