// Frame payloads used by the distributed cluster-formation protocol.
//
// Sizes are nominal over-the-air byte counts used by the energy model: NIDs
// are 4 bytes, cluster ids 4 bytes, plus a 1-byte frame type.

#pragma once

#include <cstddef>
#include <vector>

#include "cluster/roles.h"
#include "common/ids.h"
#include "radio/payload.h"

namespace cfds {

/// One-hop neighbourhood probe (formation round 1). In steady state this
/// round merges with fds.R-1 (feature F5): the FDS heartbeat carries the same
/// NID + mark bit.
struct ProbePayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kProbe;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  ProbePayload() : Payload(kTag) {}

  NodeId sender;
  bool marked = false;

  [[nodiscard]] std::string_view kind() const override { return "probe"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 6; }
};

/// Clusterhead self-election claim (round 2): the sender believes it has the
/// lowest NID in its unmarked one-hop neighbourhood.
struct ChClaimPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kChClaim;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  ChClaimPayload() : Payload(kTag) {}

  NodeId claimant;

  [[nodiscard]] std::string_view kind() const override { return "ch-claim"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 5; }
};

/// Join request (round 3), addressed to the chosen claimant. Carries the
/// sender's observed one-hop degree, the input to deputy ranking (feature
/// F2 favours well-connected deputies).
struct JoinPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kJoin;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  JoinPayload() : Payload(kTag) {}

  NodeId sender;
  NodeId clusterhead;
  std::size_t observed_degree = 0;

  [[nodiscard]] std::string_view kind() const override { return "join"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 12; }
};

/// Cluster organization announcement (round 4): the CH names its members and
/// ranked deputies. Receipt of this frame is what "marks" a node (footnote 2).
struct AnnouncePayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kAnnounce;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  AnnouncePayload() : Payload(kTag) {}

  ClusterId cluster;
  NodeId clusterhead;
  std::vector<NodeId> members;
  std::vector<NodeId> deputies;

  [[nodiscard]] std::string_view kind() const override { return "announce"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 9 + 4 * (members.size() + deputies.size());
  }
};

/// Gateway candidacy (round 5): a marked node tells its own CH which foreign
/// clusterheads it can hear directly (the "one-hop neighbour of the CHs of
/// two different clusters" qualification, Section 3).
struct GatewayCandidacyPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kGatewayCandidacy;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  GatewayCandidacyPayload() : Payload(kTag) {}

  NodeId sender;
  ClusterId home_cluster;
  /// Foreign clusters whose CH the sender hears, with that CH's NID.
  std::vector<std::pair<ClusterId, NodeId>> reachable;

  [[nodiscard]] std::string_view kind() const override { return "gw-cand"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    return 9 + 8 * reachable.size();
  }
};

/// Gateway assignment (round 6): the CH publishes the per-neighbour-cluster
/// GW/BGW ranking. Members merge these links into their views.
struct GatewayAssignmentPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kGatewayAssignment;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  GatewayAssignmentPayload() : Payload(kTag) {}

  ClusterId cluster;
  std::vector<GatewayLink> links;

  [[nodiscard]] std::string_view kind() const override { return "gw-assign"; }
  [[nodiscard]] std::size_t size_bytes() const override {
    std::size_t n = 5;
    for (const GatewayLink& link : links) n += 12 + 4 * link.backups.size();
    return n;
  }
};

}  // namespace cfds
