// Discrete-event simulation kernel.
//
// A single-threaded event loop with a monotonic clock. Events scheduled for
// the same instant fire in scheduling order (stable sequence numbers), which
// keeps protocol round boundaries deterministic: all heartbeats scheduled at
// the epoch of fds.R-1 are delivered before the digest round begins.
//
// Timers are cancellable via TimerHandle; the inter-cluster forwarding logic
// (implicit acknowledgements, ranked BGW standby) relies on cancelling
// retransmission timers when an acknowledgement is overheard.
//
// The schedule -> fire path is allocation-free in the common case:
//
//   * EventFn is a small-buffer-optimised callable. Captures up to
//     kInlineCapacity bytes (48 — enough for a full radio Reception plus a
//     receiver pointer) are stored inline in the queue entry; only larger or
//     throwing-move captures fall back to one heap allocation.
//   * Timer state lives in a slab of generation-counted slots recycled
//     through a freelist, replacing the shared_ptr control block per event.
//     A TimerHandle is {slot, generation}; once the event fires or its
//     cancelled entry is popped, the slot's generation is bumped and any
//     outstanding handle becomes inert.
//   * The pending queue is a binary heap over a plain vector (std::push_heap/
//     std::pop_heap with the same (time, seq) comparator the kernel always
//     used), so steady-state push/pop never allocates once the vector has
//     grown to the simulation's high-water mark.
//
// Handles do not keep the simulator alive: cancel()/pending() must not be
// called after the Simulator is destroyed (protocol agents never outlive
// their network's simulator).

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace cfds {

class Simulator;

/// Move-only callable with inline storage for small captures; the event
/// queue's replacement for std::function<void()>.
class EventFn {
 public:
  /// Inline capture budget. Sized for the radio delivery closure (a Radio*
  /// plus a Reception by value) with room to spare for protocol timers.
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `to` from `from` and destroys the source.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](void* from, void* to) {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles are cheap to copy (slot index + generation).
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// The event loop. Owns the pending-event queue and the simulated clock.
class Simulator {
 public:
  using Action = EventFn;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now).
  /// Returns a handle usable to cancel the event.
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` to run `delay` after the current time.
  TimerHandle schedule_after(SimTime delay, Action action);

  /// Pre-sizes the event heap and timer slab so a simulation with at most
  /// `pending_capacity` simultaneously pending events never allocates on the
  /// schedule path. Optional — both structures also grow on demand.
  void reserve(std::size_t pending_capacity);

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed.
  void run_until(SimTime deadline);

  /// Runs until the queue is empty. Guarded by a step limit to turn runaway
  /// event loops into a crash rather than a hang.
  void run_to_completion(std::uint64_t max_events = 500'000'000);

  /// Executes at most one event; returns false if the queue was empty.
  /// Discarding the result can hide a scheduling bug (a loop that believes
  /// it is draining events while the queue is already dry) — callers that
  /// genuinely don't care must say so with (void).
  [[nodiscard]] bool step();

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (cancelled events may still be
  /// counted until they are popped).
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }

 private:
  friend class TimerHandle;

  struct Entry {
    SimTime when;
    std::uint64_t sequence;
    std::uint32_t slot;
    EventFn action;
  };
  /// Heap comparator: the std:: heap algorithms keep the *largest* element
  /// (per the comparator) at the front, so "later fires are smaller" puts the
  /// earliest (time, seq) on top — identical ordering to the original
  /// priority_queue kernel.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  /// Timer-slab slot. `generation` advances each time the slot is released,
  /// invalidating any TimerHandle minted for an earlier cycle.
  struct Slot {
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool cancelled = false;
  };
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  [[nodiscard]] bool slot_live(std::uint32_t slot,
                               std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace cfds
