// Discrete-event simulation kernel.
//
// A single-threaded event loop with a monotonic clock. Events scheduled for
// the same instant fire in scheduling order (stable sequence numbers), which
// keeps protocol round boundaries deterministic: all heartbeats scheduled at
// the epoch of fds.R-1 are delivered before the digest round begins.
//
// Timers are cancellable via TimerHandle; the inter-cluster forwarding logic
// (implicit acknowledgements, ranked BGW standby) relies on cancelling
// retransmission timers when an acknowledgement is overheard.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace cfds {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles are cheap to copy (shared control block).
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit TimerHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// The event loop. Owns the pending-event queue and the simulated clock.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now).
  /// Returns a handle usable to cancel the event.
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` to run `delay` after the current time.
  TimerHandle schedule_after(SimTime delay, Action action);

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed.
  void run_until(SimTime deadline);

  /// Runs until the queue is empty. Guarded by a step limit to turn runaway
  /// event loops into a crash rather than a hang.
  void run_to_completion(std::uint64_t max_events = 500'000'000);

  /// Executes at most one event; returns false if the queue was empty.
  bool step();

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (cancelled events may still be
  /// counted until they are popped).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t sequence;
    Action action;
    std::shared_ptr<TimerHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace cfds
