// Discrete-event simulation kernel.
//
// A single-threaded event loop with a monotonic clock. Events scheduled for
// the same instant fire in scheduling order (stable sequence numbers), which
// keeps protocol round boundaries deterministic: all heartbeats scheduled at
// the epoch of fds.R-1 are delivered before the digest round begins.
//
// Timers are cancellable via TimerHandle; the inter-cluster forwarding logic
// (implicit acknowledgements, ranked BGW standby) relies on cancelling
// retransmission timers when an acknowledgement is overheard.
//
// The schedule -> fire path is allocation-free in the common case:
//
//   * EventFn is a small-buffer-optimised callable. Captures up to
//     kInlineCapacity bytes (48 — enough for a batched-delivery closure
//     several times over) are stored inline; only larger or throwing-move
//     captures fall back to one heap allocation.
//   * The callable and all per-event state live in a slab of
//     generation-counted slots recycled through a freelist, replacing the
//     shared_ptr control block per event. A TimerHandle is
//     {slot, generation}; once the event fires or its cancelled entry is
//     popped, the slot's generation is bumped and any outstanding handle
//     becomes inert. Keeping the callable in the slab makes the queues'
//     entries trivially-copyable 24-byte records ({when, sequence, slot}),
//     so sifting an entry costs a plain copy, not an indirect move.
//   * The pending queue is, by default, a bounded-horizon CalendarQueue
//     (src/event/calendar_queue.h): O(1)-ish bucket inserts and pops for
//     the near events that dominate the workload (channel deliveries are
//     bounded by Thop, protocol timers by a few phi). Events scheduled
//     beyond the calendar's horizon go to a binary-heap overflow; the two
//     streams merge by (time, sequence), so firing order is bit-identical
//     to the pure binary heap. QueueMode::kHeap (the runner tools'
//     --no-calendar flag) keeps the pure heap as an always-available
//     fallback and as the property-test oracle for the calendar.
//
// Handles do not keep the simulator alive: cancel()/pending() must not be
// called after the Simulator is destroyed (protocol agents never outlive
// their network's simulator).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "event/calendar_queue.h"

namespace cfds {

class Simulator;

/// Move-only callable with inline storage for small captures; the event
/// queue's replacement for std::function<void()>.
class EventFn {
 public:
  /// Inline capture budget. Sized for the protocol timer closures (a
  /// receiver pointer plus a few words of state) with room to spare.
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `to` from `from` and destroys the source.
    /// nullptr means the stored bytes are trivially relocatable and the
    /// buffer is moved with one memcpy — no indirect call. Every hot-path
    /// closure (pointer/integer captures) takes this path, as does the
    /// heap fallback (its stored state is just the owning pointer).
    void (*relocate)(void* from, void* to);
    /// nullptr means trivially destructible: destruction is a no-op.
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* from, void* to) {
              Fn* src = std::launder(reinterpret_cast<Fn*>(from));
              ::new (to) Fn(std::move(*src));
              src->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      nullptr,  // relocation moves the owning pointer; memcpy covers it
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        // Fixed-size copy: the compiler turns this into a few vector moves,
        // and copying slack bytes of the buffer is harmless. GCC 12's
        // inliner sees those slack bytes as uninitialized reads when a
        // small capture is moved, hence the local suppression.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        std::memcpy(storage_, other.storage_, kInlineCapacity);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
      }
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles are cheap to copy (slot index + generation).
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still pending (scheduled, not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Which pending-queue implementation a Simulator uses. Both produce
/// bit-identical firing order; kHeap exists as the calendar's property-test
/// oracle and as the --no-calendar fallback.
enum class QueueMode : std::uint8_t { kCalendar, kHeap };

/// The event loop. Owns the pending-event queue and the simulated clock.
class Simulator {
 public:
  using Action = EventFn;

  /// Uses the process-wide default queue mode (see set_default_queue_mode).
  Simulator();
  explicit Simulator(QueueMode mode) : mode_(mode) {}

  /// Sets the queue mode every subsequently-constructed Simulator uses.
  /// The runner tools call this once, before any trial runs, when
  /// --no-calendar is given; tests pin modes per instance instead.
  static void set_default_queue_mode(QueueMode mode);
  [[nodiscard]] static QueueMode default_queue_mode();

  [[nodiscard]] QueueMode queue_mode() const { return mode_; }

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now).
  /// Returns a handle usable to cancel the event.
  TimerHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` to run `delay` after the current time.
  TimerHandle schedule_after(SimTime delay, Action action);

  // --- Batched fan-out scheduling (the channel's broadcast path) ---------
  //
  // A broadcast to k receivers is one shared piece of work fired k times at
  // k different instants. Scheduling it as k independent events costs k
  // timer slots and k closures; a batch costs ONE slot holding a raw
  // (callback, context) pair plus k 24-byte queue entries whose `aux` field
  // carries the per-firing index. Each firing gets its own (time, sequence)
  // pair drawn in add order, so batch events interleave with ordinary
  // events in exactly the order per-event scheduling would produce.
  //
  // Batch firings are not cancellable (no TimerHandle is minted); the slot
  // is released when the last entry fires. `ctx` must outlive the batch.

  /// Per-firing callback: `ctx` from begin_batch, `index` from
  /// add_batch_event.
  using BatchFn = void (*)(void* ctx, std::uint32_t index);

  /// Opaque reference to an open batch (one acquired timer slot).
  struct BatchRef {
    std::uint32_t slot;
  };

  /// Opens a batch. At least one add_batch_event call must follow (an
  /// empty batch would leak its slot until the simulator is destroyed).
  [[nodiscard]] BatchRef begin_batch(BatchFn fn, void* ctx);

  /// Adds one firing of the batch's callback at now + delay, carrying
  /// `index`. Draws the next sequence number, exactly like schedule_after.
  void add_batch_event(BatchRef batch, SimTime delay, std::uint32_t index);

  /// Pre-sizes the overflow heap and timer slab so a simulation with at
  /// most `pending_capacity` simultaneously pending events never allocates
  /// on the schedule path. Optional — all structures also grow on demand.
  void reserve(std::size_t pending_capacity);

  /// Runs events until the queue empties or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed.
  void run_until(SimTime deadline);

  /// Runs until the queue is empty. Guarded by a step limit to turn runaway
  /// event loops into a crash rather than a hang.
  void run_to_completion(std::uint64_t max_events = 500'000'000);

  /// Executes at most one event; returns false if the queue was empty.
  /// Discarding the result can hide a scheduling bug (a loop that believes
  /// it is draining events while the queue is already dry) — callers that
  /// genuinely don't care must say so with (void).
  [[nodiscard]] bool step();

  /// Fire time of the earliest pending event, as a peek; false when the
  /// queue is empty. Cancelled events still occupy queue entries until they
  /// are popped, so the reported time is a lower bound on the next firing.
  /// Real-time drivers (src/transport/real_time.h) use this to bound their
  /// poll timeout instead of busy-stepping the queue.
  [[nodiscard]] bool next_event_time(SimTime* when);

  /// Number of events executed so far (diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (cancelled events may still be
  /// counted until they are popped).
  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() + calendar_.size();
  }

 private:
  friend class TimerHandle;

  /// Timer-slab slot: the event's callable plus its cancellation state.
  /// `generation` advances each time the slot is released, invalidating any
  /// TimerHandle minted for an earlier cycle. A batch slot (batch_fn set)
  /// stores its raw callback instead of an EventFn and stays acquired until
  /// `pending` firings have popped.
  struct Slot {
    BatchFn batch_fn = nullptr;
    void* batch_ctx = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    std::uint32_t pending = 0;  ///< outstanding batch firings
    bool cancelled = false;
    EventFn action;
  };
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  [[nodiscard]] bool slot_live(std::uint32_t slot,
                               std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation;
  }

  /// Which queue holds the entry peek_next reported.
  enum class QueueSource : std::uint8_t { kCalendarQueue, kOverflowHeap };

  /// Routes an entry to the calendar (near events, calendar mode) or the
  /// binary heap (heap mode, or beyond the calendar's horizon).
  void push_entry(const EventEntry& entry);
  /// True (filling *entry) when any event is pending; picks the earlier
  /// (time, sequence) of the calendar's head and the heap's head.
  [[nodiscard]] bool pop_next(EventEntry* entry);
  /// Earliest pending (time, sequence), as a peek; false when empty.
  /// `source` (optional) reports which queue holds it, so run_until can pop
  /// directly instead of re-peeking.
  [[nodiscard]] bool peek_next(EventEntry* entry,
                               QueueSource* source = nullptr);
  /// Executes one popped entry. False if it was a cancelled ordinary event
  /// (nothing ran); true after a firing.
  bool fire(const EventEntry& entry);

  SimTime now_ = SimTime::zero();
  QueueMode mode_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  /// kHeap mode: the only queue. kCalendar mode: overflow for events
  /// scheduled beyond the calendar's horizon (whole-experiment schedules,
  /// fault plans) — few, so the O(log n) sift doesn't matter.
  std::vector<EventEntry> heap_;
  CalendarQueue calendar_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace cfds
