#include "event/calendar_queue.h"

#include <algorithm>

#include "common/expect.h"

namespace cfds {

void CalendarQueue::ensure_buckets() {
  if (buckets_.empty()) {
    buckets_.resize(kNumBuckets);
    occupied_.resize(kNumBuckets / 64, 0);
  }
}

void CalendarQueue::reserve(std::size_t per_bucket) {
  ensure_buckets();
  for (Bucket& bucket : buckets_) bucket.entries.reserve(per_bucket);
  // Every bucket's vector can end up parked in spare_ at once, so size the
  // free list for the worst case up front (8192 pointers-worth, ~200KB).
  spare_.reserve(kNumBuckets);
}

void CalendarQueue::stash(std::vector<EventEntry>&& donor) {
  // Keep spare_ capacity-sorted (smallest at the front) so trade-ups can
  // best-fit a donor with one binary search. The sort-in costs a tail
  // memmove of vector headers, once per drained burst bucket or trade-up.
  // Small vectors displaced by a trade-up are pooled too: the buckets a
  // past burst left at zero capacity claim a donor for their next lone
  // timer event, and those claims must be satisfiable by the small end of
  // the pool or they starve the burst of its big donors.
  if (donor.capacity() == 0) return;
  const std::size_t cap = donor.capacity();
  const auto pos = std::upper_bound(
      spare_.begin(), spare_.end(), cap,
      [](std::size_t c, const std::vector<EventEntry>& v) {
        return c < v.capacity();
      });
  spare_.insert(pos, std::move(donor));
}

void CalendarQueue::ensure_sorted(Bucket& bucket) {
  if (!bucket.sorted) {
    std::sort(bucket.entries.begin(), bucket.entries.end(), FiresLater{});
    bucket.sorted = true;
  }
}

void CalendarQueue::advance(SimTime now) {
  // Every live entry fires at or after `now`, so each bucket strictly
  // before now's bucket is empty and the cursor can jump there directly.
  const std::int64_t aligned =
      (now.as_micros() / kBucketWidthUs) * kBucketWidthUs;
  if (aligned > window_start_.as_micros()) {
    window_start_ = SimTime::micros(aligned);
    cursor_ = bucket_index(now);
  }
}

std::size_t CalendarQueue::first_occupied() const {
  // Scan the occupancy bitmap a word at a time, starting at the cursor's
  // word and wrapping once around the wheel. The horizon invariant keeps
  // every live entry within one lap of the cursor, so ring order is time
  // order and the first set bit marks the earliest non-empty bucket.
  const std::size_t words = occupied_.size();
  std::size_t word = cursor_ / 64;
  // Mask off buckets behind the cursor in its own word.
  std::uint64_t bits = occupied_[word] & (~std::uint64_t{0} << (cursor_ % 64));
  for (std::size_t scanned = 0; scanned <= words; ++scanned) {
    if (bits != 0) {
      return word * 64 + std::size_t(__builtin_ctzll(bits));
    }
    word = (word + 1) % words;
    bits = occupied_[word];
  }
  CFDS_EXPECT(false, "calendar queue occupancy bitmap out of sync");
  __builtin_unreachable();
}

void CalendarQueue::insert(const EventEntry& entry, SimTime now) {
  CFDS_EXPECT(entry.when >= now, "calendar insert in the past");
  CFDS_EXPECT(entry.when - now <= horizon(),
              "calendar insert beyond the bounded horizon (route far events "
              "to the overflow heap; see docs/PERF.md)");
  ensure_buckets();
  advance(now);
  const std::size_t idx = bucket_index(entry.when);
  Bucket& bucket = buckets_[idx];
  if (bucket.entries.size() == bucket.entries.capacity() && !spare_.empty() &&
      spare_.back().capacity() > bucket.entries.capacity()) {
    // The bucket is about to grow: trade up to a drained burst vector
    // instead. Best fit — the smallest donor giving at least the doubling
    // a reallocation would have given — so one monster bucket's worth of
    // capacity is not burned on a claim that needed 128 slots (spare_ is
    // capacity-sorted, smallest at the front). Copying the current entries
    // (at most the old capacity) costs less than the reallocation it
    // replaces; the displaced vector goes back into the pool, where it
    // satisfies the small claims of trail buckets this bucket's past
    // trade-ups left at zero capacity (see stash()).
    const std::size_t want = 2 * bucket.entries.capacity();
    auto pos = std::lower_bound(
        spare_.begin(), spare_.end(), want,
        [](const std::vector<EventEntry>& v, std::size_t cap) {
          return v.capacity() < cap;
        });
    if (pos == spare_.end()) --pos;  // all smaller than 2x: take largest
    std::vector<EventEntry> donor = std::move(*pos);
    spare_.erase(pos);
    donor.assign(bucket.entries.begin(), bucket.entries.end());
    std::swap(bucket.entries, donor);
    stash(std::move(donor));
  }
  if (bucket.sorted && !bucket.entries.empty()) {
    // The bucket is mid-drain (sorted latest-first, popped from the back).
    // A short-delay insert lands near the back: splicing it into place keeps
    // the bucket sorted for a small tail memmove, where dirtying it would
    // re-sort the whole bucket on the next pop. Far-from-the-back positions
    // fall through to the O(1) unsorted push instead — the memmove would
    // cost more than the one deferred sort it saves.
    const auto pos = std::upper_bound(bucket.entries.begin(),
                                      bucket.entries.end(), entry,
                                      FiresLater{});
    if (bucket.entries.end() - pos <= 64) {
      bucket.entries.insert(pos, entry);
    } else {
      bucket.entries.push_back(entry);
      bucket.sorted = false;
    }
  } else {
    bucket.entries.push_back(entry);
    bucket.sorted = false;
  }
  occupied_[idx / 64] |= std::uint64_t{1} << (idx % 64);
  ++size_;
  if (min_bucket_ != kNoBucket) {
    if (ring_distance(idx) < ring_distance(min_bucket_)) min_bucket_ = idx;
  } else if (size_ == 1) {
    // A cleared memo on a non-empty wheel says nothing about the other
    // buckets, so it must stay cleared until the next bitmap scan — but on
    // an empty wheel this bucket is trivially the earliest.
    min_bucket_ = idx;
  }
}

const EventEntry* CalendarQueue::peek(SimTime now) {
  if (size_ == 0) return nullptr;
  advance(now);
  if (min_bucket_ == kNoBucket) min_bucket_ = first_occupied();
  Bucket& bucket = buckets_[min_bucket_];
  ensure_sorted(bucket);
  return &bucket.entries.back();
}

EventEntry CalendarQueue::pop_min(SimTime now) {
  CFDS_EXPECT(size_ > 0, "pop_min on an empty calendar queue");
  advance(now);
  if (min_bucket_ == kNoBucket) min_bucket_ = first_occupied();
  const std::size_t idx = min_bucket_;
  Bucket& bucket = buckets_[idx];
  ensure_sorted(bucket);
  const EventEntry entry = bucket.entries.back();
  bucket.entries.pop_back();
  if (bucket.entries.empty()) {
    occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
    min_bucket_ = kNoBucket;  // the next peek/pop rescans the bitmap
    if (bucket.entries.capacity() >= kSpareWorthy) {
      // Donate the warm vector for the next bucket activation (see spare_).
      stash(std::move(bucket.entries));
      bucket.entries.clear();  // moved-from: force the guaranteed state
    }
  }
  --size_;
  CFDS_EXPECT(entry.when >= now, "calendar queue fired an event in the past");
  return entry;
}

}  // namespace cfds
