#include "event/simulator.h"

#include <utility>

#include "common/expect.h"

namespace cfds {

void TimerHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool TimerHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  CFDS_EXPECT(when >= now_, "cannot schedule events in the past");
  auto state = std::make_shared<TimerHandle::State>();
  queue_.push(Entry{when, next_sequence_++, std::move(action), state});
  return TimerHandle{std::move(state)};
}

TimerHandle Simulator::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; entries must be moved out via a
    // const_cast-free copy of the cheap fields and a move of the action.
    Entry entry{queue_.top().when, queue_.top().sequence,
                std::move(const_cast<Entry&>(queue_.top()).action),
                queue_.top().state};
    queue_.pop();
    if (entry.state->cancelled) continue;
    now_ = entry.when;
    entry.state->fired = true;
    ++executed_;
    entry.action();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_to_completion(std::uint64_t max_events) {
  std::uint64_t steps = 0;
  while (step()) {
    CFDS_EXPECT(++steps <= max_events,
                "event budget exhausted: likely a runaway timer loop");
  }
}

}  // namespace cfds
