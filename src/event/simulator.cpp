#include "event/simulator.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/expect.h"

namespace cfds {

namespace {
/// Process-wide default for newly constructed simulators. Written once by
/// the tool entry points (before any worker thread constructs a Simulator);
/// atomic so concurrent trial threads reading it are race-free.
std::atomic<QueueMode> g_default_queue_mode{QueueMode::kCalendar};
}  // namespace

Simulator::Simulator() : mode_(default_queue_mode()) {}

void Simulator::set_default_queue_mode(QueueMode mode) {
  g_default_queue_mode.store(mode, std::memory_order_relaxed);
}

QueueMode Simulator::default_queue_mode() {
  return g_default_queue_mode.load(std::memory_order_relaxed);
}

void TimerHandle::cancel() {
  if (sim_ != nullptr && sim_->slot_live(slot_, generation_)) {
    sim_->slots_[slot_].cancelled = true;
  }
}

bool TimerHandle::pending() const {
  return sim_ != nullptr && sim_->slot_live(slot_, generation_) &&
         !sim_->slots_[slot_].cancelled;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    slots_[slot].cancelled = false;
    return slot;
  }
  CFDS_EXPECT(slots_.size() < kNoSlot, "timer slab exhausted");
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  // Bumping the generation invalidates every handle minted for this cycle.
  ++slots_[slot].generation;
  slots_[slot].cancelled = false;
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

void Simulator::push_entry(const EventEntry& entry) {
  if (mode_ == QueueMode::kCalendar &&
      entry.when - now_ <= CalendarQueue::horizon()) {
    calendar_.insert(entry, now_);
  } else {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  }
}

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  CFDS_EXPECT(when >= now_, "cannot schedule events in the past");
  const std::uint32_t slot = acquire_slot();
  const std::uint32_t generation = slots_[slot].generation;
  slots_[slot].action = std::move(action);
  push_entry(EventEntry{when, next_sequence_++, slot});
  return TimerHandle{this, slot, generation};
}

Simulator::BatchRef Simulator::begin_batch(BatchFn fn, void* ctx) {
  CFDS_EXPECT(fn != nullptr, "batch callback must not be null");
  const std::uint32_t slot = acquire_slot();
  slots_[slot].batch_fn = fn;
  slots_[slot].batch_ctx = ctx;
  slots_[slot].pending = 0;
  return BatchRef{slot};
}

void Simulator::add_batch_event(BatchRef batch, SimTime delay,
                                std::uint32_t index) {
  CFDS_EXPECT(delay >= SimTime::zero(), "cannot schedule events in the past");
  ++slots_[batch.slot].pending;
  push_entry(EventEntry{now_ + delay, next_sequence_++, batch.slot, index});
}

TimerHandle Simulator::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::reserve(std::size_t pending_capacity) {
  heap_.reserve(pending_capacity);
  slots_.reserve(pending_capacity);
  if (mode_ == QueueMode::kCalendar) {
    // Spread the budget across the wheel (with a floor of a few entries per
    // bucket); heavily skewed bucket loads beyond that grow lazily, once.
    const std::size_t per_bucket =
        std::max<std::size_t>(4, pending_capacity / CalendarQueue::kNumBuckets);
    calendar_.reserve(per_bucket);
  }
}

bool Simulator::peek_next(EventEntry* entry, QueueSource* source) {
  const EventEntry* near = calendar_.peek(now_);
  if (near == nullptr && heap_.empty()) return false;
  QueueSource src;
  if (near == nullptr) {
    *entry = heap_.front();
    src = QueueSource::kOverflowHeap;
  } else if (heap_.empty() || !FiresLater{}(*near, heap_.front())) {
    // near fires no later than the heap head (FiresLater is strict, and the
    // two queues never share a (time, sequence) pair).
    *entry = *near;
    src = QueueSource::kCalendarQueue;
  } else {
    *entry = heap_.front();
    src = QueueSource::kOverflowHeap;
  }
  if (source != nullptr) *source = src;
  return true;
}

bool Simulator::next_event_time(SimTime* when) {
  EventEntry head;
  if (!peek_next(&head)) return false;
  *when = head.when;
  return true;
}

bool Simulator::pop_next(EventEntry* entry) {
  const EventEntry* near = calendar_.peek(now_);
  if (near == nullptr && heap_.empty()) return false;
  if (near != nullptr && (heap_.empty() || !FiresLater{}(*near, heap_.front()))) {
    *entry = calendar_.pop_min(now_);
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    *entry = heap_.back();
    heap_.pop_back();
  }
  return true;
}

bool Simulator::fire(const EventEntry& entry) {
  Slot& slot = slots_[entry.slot];
  if (slot.batch_fn != nullptr) {
    // Batch firing: invoke the raw callback through locals — the slot is
    // released before the last invocation (matching the ordinary path's
    // release-before-invoke order), and the callback may grow the slab.
    const BatchFn fn = slot.batch_fn;
    void* ctx = slot.batch_ctx;
    if (--slot.pending == 0) {
      slot.batch_fn = nullptr;
      release_slot(entry.slot);
    }
    now_ = entry.when;
    ++executed_;
    fn(ctx, entry.aux);
    return true;
  }
  // Move the callable out before releasing: release bumps the generation
  // (so pending() is already false inside the event's own action,
  // matching the fired-flag order of the old kernel), and the action may
  // itself schedule events that grow the slab.
  EventFn action = std::move(slot.action);
  const bool cancelled = slot.cancelled;
  release_slot(entry.slot);
  if (cancelled) return false;
  now_ = entry.when;
  ++executed_;
  action();
  return true;
}

bool Simulator::step() {
  EventEntry entry;
  while (pop_next(&entry)) {
    if (fire(entry)) return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  EventEntry head;
  QueueSource source;
  while (peek_next(&head, &source)) {
    if (head.when > deadline) break;
    // Pop straight from the source queue the peek identified — no second
    // head comparison. The calendar's pop hits its min-bucket memo that the
    // peek just refreshed.
    if (source == QueueSource::kCalendarQueue) {
      (void)calendar_.pop_min(now_);
      // Pull the next event's timer slot toward the cache while this event
      // runs; the slot array is large enough that the upcoming load would
      // otherwise stall the dispatch chain.
      if (const EventEntry* next = calendar_.peek_free()) {
        __builtin_prefetch(&slots_[next->slot]);
      }
    } else {
      std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
      heap_.pop_back();
    }
    (void)fire(head);  // false only for a cancelled event; keep draining
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_to_completion(std::uint64_t max_events) {
  std::uint64_t steps = 0;
  while (step()) {
    CFDS_EXPECT(++steps <= max_events,
                "event budget exhausted: likely a runaway timer loop");
  }
}

}  // namespace cfds
