#include "event/simulator.h"

#include <algorithm>
#include <utility>

#include "common/expect.h"

namespace cfds {

void TimerHandle::cancel() {
  if (sim_ != nullptr && sim_->slot_live(slot_, generation_)) {
    sim_->slots_[slot_].cancelled = true;
  }
}

bool TimerHandle::pending() const {
  return sim_ != nullptr && sim_->slot_live(slot_, generation_) &&
         !sim_->slots_[slot_].cancelled;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    slots_[slot].cancelled = false;
    return slot;
  }
  CFDS_EXPECT(slots_.size() < kNoSlot, "timer slab exhausted");
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  // Bumping the generation invalidates every handle minted for this cycle.
  ++slots_[slot].generation;
  slots_[slot].cancelled = false;
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

TimerHandle Simulator::schedule_at(SimTime when, Action action) {
  CFDS_EXPECT(when >= now_, "cannot schedule events in the past");
  const std::uint32_t slot = acquire_slot();
  const std::uint32_t generation = slots_[slot].generation;
  heap_.push_back(Entry{when, next_sequence_++, slot, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return TimerHandle{this, slot, generation};
}

TimerHandle Simulator::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

void Simulator::reserve(std::size_t pending_capacity) {
  heap_.reserve(pending_capacity);
  slots_.reserve(pending_capacity);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    const bool cancelled = slots_[entry.slot].cancelled;
    // Release before invoking so pending() is already false inside the
    // event's own action (matching the fired-flag order of the old kernel).
    release_slot(entry.slot);
    if (cancelled) continue;
    now_ = entry.when;
    ++executed_;
    entry.action();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    if (heap_.front().when > deadline) break;
    (void)step();  // the emptiness check above already guards the queue
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_to_completion(std::uint64_t max_events) {
  std::uint64_t steps = 0;
  while (step()) {
    CFDS_EXPECT(++steps <= max_events,
                "event budget exhausted: likely a runaway timer loop");
  }
}

}  // namespace cfds
