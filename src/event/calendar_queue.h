// Bounded-horizon calendar (bucket) queue for the event kernel.
//
// The simulator's workload is dominated by radio deliveries, and every
// channel delay is bounded by the one-hop bound Thop (protocol timers by a
// few multiples of the heartbeat interval phi). A calendar queue exploits
// that bound: events land in fixed-width time buckets, so an insert touches
// one bucket instead of sifting through a binary heap of every pending
// event, and a pop touches the earliest non-empty bucket.
//
// Ordering contract: pops come out in ascending (time, sequence) order —
// exactly the order the binary-heap kernel produces — so switching the
// queue implementation cannot change a single event firing. Buckets
// accumulate trivially-copyable 24-byte entries unsorted (the callable
// lives in the simulator's timer slab, not in the queue), so an insert is
// one push_back with no sifting. A bucket is sorted latest-first exactly
// once, when it becomes the earliest occupied bucket, and then drained
// from the back in (time, sequence) order; an insert into an
// already-drained bucket (a sub-bucket-width delay) splices into place near
// the back, or marks the bucket for re-sorting when the splice point is too
// deep. Buckets partition events by time, so draining buckets in
// time order yields the global (time, sequence) order.
//
// Horizon invariant: an entry may only be inserted for a time in
// [now, now + horizon()]. Inserting beyond the horizon would wrap the wheel
// and silently corrupt firing order — an entry a full lap ahead shares a
// bucket with near entries and would fire a lap early — so insert() aborts
// loudly (CFDS_EXPECT) instead. Callers with unbounded delays (the
// simulator's far-event overflow heap) must route such events elsewhere;
// see docs/PERF.md.
//
// Cursor invariant: all live entries fire at or after `now` (the kernel
// pops events in order), so every bucket strictly before now's bucket is
// empty and the cursor can advance to now for free. The occupancy bitmap
// (one bit per bucket, scanned a word at a time) makes "find the earliest
// non-empty bucket" cheap even when the pending events are sparse in time.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace cfds {

/// A pending event as the queues order it: fire time, global scheduling
/// sequence, and the timer-slab slot that holds the callable and the
/// cancellation state. Trivially copyable on purpose — heap sifts and
/// bucket pushes move 24 bytes with no indirect calls.
struct EventEntry {
  SimTime when;
  std::uint64_t sequence;
  std::uint32_t slot;
  /// Receiver index for batch-scheduled events (one slot fired k times,
  /// once per queue entry); unused (0) for ordinary events. Lives in what
  /// would otherwise be struct padding, so entries stay 24 bytes.
  std::uint32_t aux = 0;
};

/// Comparator for max-heap algorithms: "fires later" is "smaller", which
/// keeps the earliest (time, sequence) on top — the ordering the kernel has
/// always used.
struct FiresLater {
  [[nodiscard]] bool operator()(const EventEntry& a,
                                const EventEntry& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.sequence > b.sequence;
  }
};

/// Bounded-horizon calendar queue over EventEntry. Not a drop-in
/// std::priority_queue: insert/peek/pop take `now` so the wheel can enforce
/// the horizon invariant and advance its cursor.
class CalendarQueue {
 public:
  /// Bucket width. 512us keeps per-bucket heaps small (tens of entries at
  /// simulated-dense loads) while the whole wheel stays a few hundred KB.
  static constexpr std::int64_t kBucketWidthUs = 512;
  /// Bucket count (power of two). The wheel must hold horizon() plus the
  /// bucket `now` sits in plus one guard bucket without wrapping:
  /// kNumBuckets >= horizon/width + 2.
  static constexpr std::size_t kNumBuckets = 8192;

  /// Latest relative delay insert() accepts: (kNumBuckets - 2) * width
  /// (~4.19 simulated seconds). Chosen to cover every channel delay
  /// (<= Thop, default 100ms) and the FDS round timers (a few Thop) with
  /// two orders of magnitude to spare.
  [[nodiscard]] static constexpr SimTime horizon() {
    return SimTime::micros(std::int64_t(kNumBuckets - 2) * kBucketWidthUs);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Inserts an entry firing at `entry.when`. Aborts (CFDS_EXPECT) unless
  /// now <= entry.when <= now + horizon().
  void insert(const EventEntry& entry, SimTime now);

  /// Builds the wheel eagerly and gives every bucket capacity for
  /// `per_bucket` entries, so workloads that stay within it never allocate
  /// on the insert path (first-touch growth is otherwise lazy, amortized).
  void reserve(std::size_t per_bucket);

  /// Earliest (time, sequence) entry, or nullptr when empty. Advances the
  /// cursor over buckets that `now` has already passed.
  [[nodiscard]] const EventEntry* peek(SimTime now);

  /// Removes and returns the earliest (time, sequence) entry. Must not be
  /// called on an empty queue.
  EventEntry pop_min(SimTime now);

  /// Free peek: the earliest entry when it is immediately known (the
  /// min-bucket memo is valid and that bucket is sorted), else nullptr.
  /// Never scans the bitmap or sorts a bucket — the kernel uses it after a
  /// pop to prefetch the next event's timer slot while the popped event
  /// runs.
  [[nodiscard]] const EventEntry* peek_free() const {
    if (min_bucket_ == kNoBucket) return nullptr;
    const Bucket& bucket = buckets_[min_bucket_];
    if (!bucket.sorted || bucket.entries.empty()) return nullptr;
    return &bucket.entries.back();
  }

 private:
  /// One wheel slot. Entries accumulate unsorted; `sorted` is set when the
  /// bucket is sorted latest-first (back() is the earliest) on first drain.
  /// A later insert either splices into place near the back (short-delay
  /// events, bounded memmove) or clears the flag for a deferred re-sort.
  struct Bucket {
    std::vector<EventEntry> entries;
    bool sorted = false;
  };

  /// Lazily sizes the wheel (first insert) so heap-mode simulators and
  /// simulators that never schedule pay nothing.
  void ensure_buckets();
  /// Returns a vector to the capacity-sorted spare pool (no-op for
  /// capacity 0). Drained buckets only donate at kSpareWorthy or above;
  /// trade-up displacements of any size are pooled.
  void stash(std::vector<EventEntry>&& donor);
  /// Sorts `bucket` latest-first if it is not already sorted.
  static void ensure_sorted(Bucket& bucket);
  /// Moves the cursor to now's bucket. Every bucket it skips is provably
  /// empty (live entries fire at or after now).
  void advance(SimTime now);
  /// Index of the first non-empty bucket at or after the cursor, found via
  /// the occupancy bitmap. Pre: size_ > 0.
  [[nodiscard]] std::size_t first_occupied() const;

  [[nodiscard]] static std::size_t bucket_index(SimTime when) {
    return std::size_t((when.as_micros() / kBucketWidthUs) &
                       std::int64_t(kNumBuckets - 1));
  }

  static constexpr std::size_t kNoBucket = ~std::size_t{0};

  /// Minimum capacity worth recycling through spare_. Buckets that only
  /// ever hold a handful of timers keep their small vectors in place;
  /// burst-grown vectors (a round's deliveries) circulate.
  static constexpr std::size_t kSpareWorthy = 256;

  /// Ring distance from the cursor to `idx` (how far ahead the bucket is,
  /// modulo the wheel). Within one lap — which the horizon invariant
  /// guarantees for every live bucket — smaller distance means earlier.
  [[nodiscard]] std::size_t ring_distance(std::size_t idx) const {
    return (idx - cursor_) & (kNumBuckets - 1);
  }

  std::vector<Bucket> buckets_;
  std::vector<std::uint64_t> occupied_;  // one bit per bucket
  /// Drained buckets donate their (empty, warm) entry vectors here and the
  /// next bucket to activate adopts one. Bursty workloads — a round's
  /// deliveries all land within Thop of the sweep — concentrate thousands
  /// of entries in a narrow band of buckets, and that band drifts around
  /// the wheel when the schedule period is not commensurate with the wheel
  /// period. Recycling lets the grown capacity follow the hot phase instead
  /// of being re-grown (and left stranded) in every bucket the band ever
  /// visits: steady-state inserts stay allocation-free and total capacity
  /// is bounded by the hot set, not by the laps driven.
  std::vector<std::vector<EventEntry>> spare_;
  std::size_t cursor_ = 0;          // bucket index window_start_ maps to
  SimTime window_start_ = SimTime::zero();  // cursor bucket's start time
  std::size_t size_ = 0;
  /// Memo of the earliest occupied bucket, maintained incrementally by
  /// insert (ring-distance compare) and invalidated when that bucket
  /// drains, so the kernel's peek→pop pair costs one bitmap scan per
  /// drained bucket instead of one per call.
  std::size_t min_bucket_ = kNoBucket;
};

}  // namespace cfds
