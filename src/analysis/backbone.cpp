#include "analysis/backbone.h"

#include <cmath>
#include <queue>

#include "common/expect.h"

namespace cfds::analysis {

double link_delivery_probability(double p, std::size_t n_backups,
                                 int ch_retransmits, int gw_retries) {
  CFDS_EXPECT(p >= 0.0 && p <= 1.0, "loss probability outside [0,1]");
  // The GW learns the update from the CH's broadcast or one of the
  // ch_retransmits direct re-sends; with it, it makes 1 + gw_retries
  // forwarding attempts, each landing with probability 1-p.
  const double gw_never_learns = std::pow(p, 1.0 + ch_retransmits);
  const double attempts_fail = std::pow(p, 1.0 + gw_retries);
  const double gw_fails =
      gw_never_learns + (1.0 - gw_never_learns) * attempts_fail;
  // Each BGW holds the update iff it heard the CH's broadcast (1-p) and
  // contributes its own attempt budget when the ack stays silent.
  const double bgw_fails = p + (1.0 - p) * attempts_fail;
  return 1.0 - gw_fails * std::pow(bgw_fails, double(n_backups));
}

BackboneCompleteness backbone_completeness(const BackboneGraph& graph,
                                           std::size_t origin,
                                           double link_success, int samples,
                                           Rng& rng) {
  CFDS_EXPECT(origin < graph.cluster_count, "origin out of range");
  CFDS_EXPECT(samples > 0, "need at least one sample");

  BackboneCompleteness result;
  std::vector<std::vector<std::size_t>> adjacency(graph.cluster_count);
  std::vector<bool> reached(graph.cluster_count);

  int all_count = 0;
  double coverage_sum = 0.0;
  for (int s = 0; s < samples; ++s) {
    for (auto& list : adjacency) list.clear();
    for (const auto& [a, b] : graph.links) {
      if (rng.bernoulli(link_success)) {
        adjacency[a].push_back(b);
        adjacency[b].push_back(a);
      }
    }
    std::fill(reached.begin(), reached.end(), false);
    std::queue<std::size_t> frontier;
    reached[origin] = true;
    frontier.push(origin);
    std::size_t count = 1;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (std::size_t v : adjacency[u]) {
        if (!reached[v]) {
          reached[v] = true;
          ++count;
          frontier.push(v);
        }
      }
    }
    if (count == graph.cluster_count) ++all_count;
    coverage_sum += double(count) / double(graph.cluster_count);
  }
  result.p_all_reached = double(all_count) / double(samples);
  result.expected_coverage = coverage_sum / double(samples);
  return result;
}

}  // namespace cfds::analysis
