// System-level completeness model (beyond the paper).
//
// Section 5 deliberately confines its measures to a single cluster, arguing
// that global measures "require the assumptions of an inter-cluster routing
// algorithm and a network topology". Having built both (the Section 4.3
// forwarding machinery and the clustering directory), we can supply the
// missing piece: the probability that a failure report reaches every
// cluster.
//
// Two components:
//   1. link_delivery_probability — closed-form estimate of one report
//      crossing one gateway link under the implicit-ack machinery: the CH
//      retransmits toward a deaf GW, the GW retries without an ack, ranked
//      BGWs (each holding the update with probability 1-p) add their own
//      attempts;
//   2. backbone_completeness — Monte-Carlo network reliability over a
//      cluster graph whose links each operate with that probability
//      (exact reliability is #P-hard; sampling is cheap and unbiased).

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace cfds::analysis {

/// P(one failure report crosses one gateway link), given the loss
/// probability `p`, `n_backups` ranked BGWs, and the retry budgets of
/// Section 4.3's machinery. Monotone in every redundancy parameter.
[[nodiscard]] double link_delivery_probability(double p, std::size_t n_backups,
                                               int ch_retransmits,
                                               int gw_retries);

/// A cluster-level backbone: nodes are clusters, edges are gateway links.
struct BackboneGraph {
  std::size_t cluster_count = 0;
  /// Undirected edges as (a, b) cluster indices.
  std::vector<std::pair<std::size_t, std::size_t>> links;
};

struct BackboneCompleteness {
  /// P(every cluster is reached from the origin).
  double p_all_reached = 0.0;
  /// E[fraction of clusters reached].
  double expected_coverage = 0.0;
};

/// Monte-Carlo reliability: each link operates independently with
/// probability `link_success`; a report floods from `origin` over operating
/// links. `samples` graph states are drawn.
[[nodiscard]] BackboneCompleteness backbone_completeness(
    const BackboneGraph& graph, std::size_t origin, double link_success,
    int samples, Rng& rng);

}  // namespace cfds::analysis
