// Analytic measures of Section 5 (Figures 5, 6, 7).
//
// All three figures share one structure: a bad event needs (a) direct
// evidence about a node to be lost, and (b) none of the other N-2 cluster
// members to "help". A member helps with probability q*s, where q is the
// chance it lies in the relevant overlap region (q = An/Au for the paper's
// worst-case node on the cluster circumference; q = 1 for the CH, whose
// heartbeat every member can hear) and s is the per-helper success chain:
//
//   Figure 5  P^(False detection)       = p^2 * (1 - q*(1-p)^2)^(N-2)
//             helper chain s=(1-p)^2: overhear the heartbeat, land the digest
//   Figure 6  P(False detection on CH)  = p^3 * (1 - (1-p)^2)^(N-2)
//             the extra p: the CH's R-3 update must also be lost (rule
//             condition 3); q = 1 (every member is one-hop from the CH)
//   Figure 7  P^(Incompleteness)        = p * (1 - q*(1-p)^3)^(N-2)
//             helper chain s=(1-p)^3: hold the update, hear the request,
//             land the forward
//
// The paper prints the Figure 5 formula as a double sum over the Binomial
// number of in-cluster neighbours and the number of overhearing neighbours;
// the sums telescope to the closed forms above. We provide both: the *_sum
// functions evaluate the paper's literal expression in log space (needed —
// Figure 6 reaches 1e-120), and tests assert the two agree to ~1e-12
// relative error. Figures 6 and 7 omit their formulations "due to space
// limitations"; DESIGN.md records our derivations and the checks against
// every quantitative statement the paper makes about those curves.

#pragma once

namespace cfds::analysis {

/// The paper's q = An/Au for a node on the cluster circumference
/// (= 2/3 - sqrt(3)/(2*pi), about 0.391; independent of R).
[[nodiscard]] double worst_case_q();

/// log of (1 - q*s)^(N-2): no member out of a pool of (N-2) both lies in the
/// overlap region (probability q) and completes the per-helper success chain
/// (probability s). The shared building block of all three figures.
[[nodiscard]] double log_no_helper(double q, double s, int n);

/// Same quantity evaluated as the paper's literal double sum over the
/// Binomial neighbour count k and the count j of neighbours passing stage
/// one of the helper chain (success `stage1`) whose stage-two attempts
/// (success `stage2`) all fail. Telescopes to log_no_helper(q, s1*s2, n).
[[nodiscard]] double log_no_helper_sum(double q, double stage1, double stage2,
                                       int n);

// --- Figure 5 ---------------------------------------------------------
[[nodiscard]] double false_detection_upper_bound(double p, int n);
[[nodiscard]] double false_detection_upper_bound_sum(double p, int n);

// --- Figure 6 ---------------------------------------------------------
[[nodiscard]] double false_detection_on_ch(double p, int n);
[[nodiscard]] double false_detection_on_ch_sum(double p, int n);

// --- Figure 7 ---------------------------------------------------------
[[nodiscard]] double incompleteness_upper_bound(double p, int n);
[[nodiscard]] double incompleteness_upper_bound_sum(double p, int n);

/// The paper's sweep: p in {0.05, 0.10, ..., 0.50}.
[[nodiscard]] inline constexpr int sweep_points() { return 10; }
[[nodiscard]] double sweep_p(int index);  // index in [0, sweep_points())

}  // namespace cfds::analysis
