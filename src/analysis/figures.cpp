#include "analysis/figures.h"

#include <cmath>
#include <vector>

#include "common/expect.h"
#include "common/geometry.h"
#include "common/logmath.h"

namespace cfds::analysis {

double worst_case_q() { return worst_case_overlap_fraction(); }

double log_no_helper(double q, double s, int n) {
  CFDS_EXPECT(n >= 2, "cluster population must be at least 2");
  return double(n - 2) * std::log1p(-q * s);
}

double log_no_helper_sum(double q, double stage1, double stage2, int n) {
  CFDS_EXPECT(n >= 2, "cluster population must be at least 2");
  const int pool = n - 2;
  // The paper's literal nested-sum structure (Figure 5's expression):
  // outer sum over the Binomial(pool, q) number k of in-region neighbours;
  // inner sum over the number j of those that pass stage one of the helper
  // chain (e.g. overhear the heartbeat, probability `stage1`) but whose
  // stage-two attempts (e.g. the digest reaching the CH, probability
  // `stage2`) all fail. Algebraically this telescopes to
  // (1 - q*stage1*stage2)^pool; we evaluate the sums term by term in log
  // space, and tests pin the equality.
  std::vector<double> outer;
  outer.reserve(std::size_t(pool) + 1);
  for (int k = 0; k <= pool; ++k) {
    std::vector<double> inner;
    inner.reserve(std::size_t(k) + 1);
    for (int j = 0; j <= k; ++j) {
      inner.push_back(log_binomial_pmf(k, j, stage1) +
                      double(j) * std::log1p(-stage2));
    }
    outer.push_back(log_binomial_pmf(pool, k, q) + log_sum_exp(inner));
  }
  return log_sum_exp(outer);
}

double false_detection_upper_bound(double p, int n) {
  const double s = (1.0 - p) * (1.0 - p);
  return std::exp(2.0 * safe_log(p) + log_no_helper(worst_case_q(), s, n));
}

double false_detection_upper_bound_sum(double p, int n) {
  // Stage one: a neighbour overhears v's heartbeat in fds.R-1 (1-p).
  // Stage two: that neighbour's digest reaches the CH in fds.R-2 (1-p).
  return std::exp(2.0 * safe_log(p) +
                  log_no_helper_sum(worst_case_q(), 1.0 - p, 1.0 - p, n));
}

double false_detection_on_ch(double p, int n) {
  const double s = (1.0 - p) * (1.0 - p);
  return std::exp(3.0 * safe_log(p) + log_no_helper(1.0, s, n));
}

double false_detection_on_ch_sum(double p, int n) {
  // Every member is one-hop from the CH (q = 1); the extra factor of p is
  // the loss of the CH's R-3 update at the DCH (rule condition 3).
  return std::exp(3.0 * safe_log(p) +
                  log_no_helper_sum(1.0, 1.0 - p, 1.0 - p, n));
}

double incompleteness_upper_bound(double p, int n) {
  const double s = (1.0 - p) * (1.0 - p) * (1.0 - p);
  return std::exp(safe_log(p) + log_no_helper(worst_case_q(), s, n));
}

double incompleteness_upper_bound_sum(double p, int n) {
  // Stage one: the neighbour itself received the CH's update (1-p).
  // Stage two: it hears v's forwarding request AND its forward lands,
  // (1-p)^2 — the factoring is arbitrary; only the product matters.
  const double stage2 = (1.0 - p) * (1.0 - p);
  return std::exp(safe_log(p) +
                  log_no_helper_sum(worst_case_q(), 1.0 - p, stage2, n));
}

double sweep_p(int index) {
  CFDS_EXPECT(index >= 0 && index < sweep_points(), "sweep index out of range");
  return 0.05 * double(index + 1);
}

}  // namespace cfds::analysis
