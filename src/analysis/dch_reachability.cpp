#include "analysis/dch_reachability.h"

#include <cmath>

#include "common/expect.h"
#include "common/geometry.h"
#include "common/statistics.h"

namespace cfds::analysis {

DchReachability dch_reachability(double r, double d, int n, double p,
                                 int samples, Rng& rng) {
  CFDS_EXPECT(r > 0.0 && d >= 0.0 && d <= r, "DCH must lie inside the cluster");
  CFDS_EXPECT(n >= 3, "need the CH, the DCH and at least one member");

  DchReachability result;
  const Disk cluster{{0.0, 0.0}, r};
  const Disk dch_disk{{d, 0.0}, r};
  const double cluster_area = cluster.area();
  result.p_out_of_range =
      1.0 - lens_area(cluster, dch_disk) / cluster_area;
  if (result.p_out_of_range <= 0.0) {
    result.p_out_of_range = 0.0;
    result.p_reachable_given_out = 1.0;  // vacuous: nobody is out of range
    return result;
  }

  const double helper_success = (1.0 - p) * (1.0 - p);
  RunningStats reach;
  int accepted = 0;
  // Rejection-sample v uniform over cluster \ dch_disk.
  while (accepted < samples) {
    const double rad = r * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    const Vec2 v{rad * std::cos(theta), rad * std::sin(theta)};
    if (dch_disk.contains(v)) continue;
    ++accepted;
    const Disk v_disk{v, r};
    const double ag = triple_intersection_area(cluster, dch_disk, v_disk);
    const double per_helper = (ag / cluster_area) * helper_success;
    // N-3 potential helpers: everyone except the failed CH, the DCH, and v.
    reach.add(1.0 - std::pow(1.0 - per_helper, double(n - 3)));
  }
  result.p_reachable_given_out = reach.mean();
  return result;
}

}  // namespace cfds::analysis
