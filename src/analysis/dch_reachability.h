// Model-based analysis of a DCH's reachability (Section 4.2).
//
// The paper reports having run this study but omits it "due to space
// limitations"; we reconstruct it. Setting (Figure 2(a)): the CH at the
// cluster centre has failed and the DCH, at distance d from the centre, is
// the detection authority. A member v at distance > R from the DCH is out of
// its transmission range; the DCH can still learn that v is alive if some
// node v' in Ag = disk(DCH, R) ∩ disk(v, R) ∩ disk(CH, R) overhears v's
// heartbeat in fds.R-1 (probability 1-p) and lands its digest on the DCH in
// fds.R-2 (probability 1-p).
//
// With members uniform in the cluster disk, a helper lands in Ag with
// probability |Ag| / (pi R^2); conditioning on v's position (uniform over
// the out-of-range sliver of the cluster) gives
//
//   P(reachable | out of range)
//     = E_v [ 1 - (1 - (|Ag(v)|/pi R^2) * (1-p)^2)^(N-3) ]
//
// The expectation is taken by Monte-Carlo integration over v (the
// three-disk area has no closed form); |Ag| itself is computed by adaptive
// quadrature, so the only sampling error is over v's position.

#pragma once

#include "common/rng.h"

namespace cfds::analysis {

struct DchReachability {
  /// Fraction of the cluster area outside the DCH's range (exact lens
  /// complement): the probability a uniform member is out of range at all.
  double p_out_of_range = 0.0;
  /// P(the DCH hears of v via some digest | v out of the DCH's range).
  double p_reachable_given_out = 0.0;
  /// Unconditional P(the DCH obtains evidence of v's liveness) for a
  /// uniform member v: in-range members count as reachable directly.
  [[nodiscard]] double p_reachable() const {
    return (1.0 - p_out_of_range) +
           p_out_of_range * p_reachable_given_out;
  }
};

/// Evaluates the reachability measures for transmission range `r`, DCH at
/// distance `d` from the (failed) CH, cluster population `n`, message-loss
/// probability `p`. `samples` positions of v are drawn for the expectation.
[[nodiscard]] DchReachability dch_reachability(double r, double d, int n,
                                               double p, int samples,
                                               Rng& rng);

}  // namespace cfds::analysis
