// Wire-format golden tests: every FDS message type round-trips through the
// service-mode codec, and the bytes it produces match the fixtures committed
// under tests/golden/wire/. The fixtures pin the format: an accidental field
// reorder, width change, or endianness slip shows up as a golden diff, not
// as a silent cross-version incompatibility between deployed daemons.
//
// To regenerate after a DELIBERATE format change (bump wire::kVersion!):
//   CFDS_UPDATE_GOLDEN=1 ./tests/test_wire

#include "transport/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aggregation/messages.h"
#include "fds/messages.h"

namespace {

using cfds::ClusterId;
using cfds::NodeId;
using cfds::ReportId;

std::string hex(const std::vector<std::uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4U]);
    out.push_back(kDigits[b & 0xFU]);
  }
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(CFDS_WIRE_GOLDEN_DIR) + "/" + name + ".hex";
}

/// Compares the frame against the committed fixture (one hex line). With
/// CFDS_UPDATE_GOLDEN=1 the fixture is rewritten instead.
void expect_golden(const std::string& name,
                   const std::vector<std::uint8_t>& frame) {
  const std::string actual = hex(frame);
  if (std::getenv("CFDS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(name), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
    out << actual << "\n";
    return;
  }
  std::ifstream in(golden_path(name));
  ASSERT_TRUE(in.good()) << "missing fixture " << golden_path(name)
                         << " (run with CFDS_UPDATE_GOLDEN=1 to create)";
  std::string expected;
  std::getline(in, expected);
  EXPECT_EQ(actual, expected) << "wire format drift in " << name
                              << " — if deliberate, bump wire::kVersion and "
                              << "regenerate with CFDS_UPDATE_GOLDEN=1";
}

/// Encodes, checks the fixture, decodes, re-encodes, and checks the bytes
/// are identical — the decoded payload must preserve every encoded field.
cfds::PayloadPtr golden_round_trip(const std::string& name,
                                   const cfds::Payload& payload) {
  std::vector<std::uint8_t> frame;
  EXPECT_TRUE(cfds::wire::encode_frame(NodeId{7}, NodeId{42}, payload, &frame));
  expect_golden(name, frame);

  cfds::wire::DecodedFrame decoded;
  EXPECT_TRUE(cfds::wire::decode_frame(frame.data(), frame.size(), &decoded));
  EXPECT_EQ(decoded.sender, NodeId{7});
  EXPECT_EQ(decoded.intended, NodeId{42});
  EXPECT_NE(decoded.payload, nullptr);
  if (decoded.payload == nullptr) return nullptr;

  std::vector<std::uint8_t> reencoded;
  EXPECT_TRUE(cfds::wire::encode_frame(NodeId{7}, NodeId{42}, *decoded.payload,
                                       &reencoded));
  EXPECT_EQ(hex(reencoded), hex(frame)) << name << " round trip not identity";
  return decoded.payload;
}

cfds::HealthUpdatePayload sample_update() {
  cfds::HealthUpdatePayload p;
  p.cluster = ClusterId{30};
  p.sender = NodeId{31};
  p.epoch = 0x0102030405060708ULL;
  p.newly_failed = {NodeId{33}};
  p.all_failed = {NodeId{33}, NodeId{12}};
  p.admitted = {NodeId{14}};
  p.departed = {NodeId{15}};
  p.members_snapshot = {NodeId{31}, NodeId{32}, NodeId{14}};
  p.takeover = true;
  p.sender_heard = {NodeId{32}, NodeId{14}};
  p.report = ReportId{0xA1B2C3D4E5F60718ULL};
  p.acks = {ReportId{0x1122334455667788ULL}, ReportId{9}};
  p.learned_from = ClusterId{20};
  p.cluster_loss_pm = 257;
  p.tune_level = 2;
  return p;
}

TEST(WireGolden, Heartbeat) {
  cfds::HeartbeatPayload p;
  p.sender = NodeId{9};
  p.marked = false;
  p.incarnation = 3;
  const auto decoded = golden_round_trip("heartbeat", p);
  const auto* hb = cfds::payload_cast<cfds::HeartbeatPayload>(decoded);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->sender, NodeId{9});
  EXPECT_FALSE(hb->marked);
  EXPECT_EQ(hb->incarnation, 3u);
}

TEST(WireGolden, MeasurementTravelsAsHeartbeat) {
  // Section 6 message sharing: a measurement IS a heartbeat to FDS, and the
  // service codec carries exactly its heartbeat fields.
  cfds::MeasurementPayload p;
  p.sender = NodeId{9};
  p.marked = true;
  p.incarnation = 5;
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(cfds::wire::encode_frame(NodeId{9}, NodeId{42}, p, &frame));
  cfds::wire::DecodedFrame decoded;
  // The kind byte on the wire is kMeasurement, and heartbeat receivers
  // accept it through HeartbeatPayload::matches.
  ASSERT_TRUE(cfds::wire::decode_frame(frame.data(), frame.size(), &decoded));
  const auto* hb = cfds::payload_cast<cfds::HeartbeatPayload>(decoded.payload);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->incarnation, 5u);
}

TEST(WireGolden, LeaveNotice) {
  cfds::LeaveNoticePayload p;
  p.sender = NodeId{17};
  const auto decoded = golden_round_trip("leave_notice", p);
  const auto* leave = cfds::payload_cast<cfds::LeaveNoticePayload>(decoded);
  ASSERT_NE(leave, nullptr);
  EXPECT_EQ(leave->sender, NodeId{17});
}

TEST(WireGolden, SleepNotice) {
  cfds::SleepNoticePayload p;
  p.sender = NodeId{21};
  p.epochs = 4;
  const auto decoded = golden_round_trip("sleep_notice", p);
  const auto* sleep = cfds::payload_cast<cfds::SleepNoticePayload>(decoded);
  ASSERT_NE(sleep, nullptr);
  EXPECT_EQ(sleep->sender, NodeId{21});
  EXPECT_EQ(sleep->epochs, 4u);
}

TEST(WireGolden, Digest) {
  cfds::DigestPayload p;
  p.sender = NodeId{5};
  p.cluster = ClusterId{2};
  p.heard = {NodeId{6}, NodeId{8}, NodeId{11}};
  p.sleeping = {{NodeId{6}, 2u}, {NodeId{8}, 1u}};
  const auto decoded = golden_round_trip("digest", p);
  const auto* digest = cfds::payload_cast<cfds::DigestPayload>(decoded);
  ASSERT_NE(digest, nullptr);
  EXPECT_EQ(digest->heard, p.heard);
  EXPECT_EQ(digest->sleeping, p.sleeping);
}

TEST(WireGolden, HealthUpdate) {
  const cfds::HealthUpdatePayload p = sample_update();
  const auto decoded = golden_round_trip("health_update", p);
  const auto* up = cfds::payload_cast<cfds::HealthUpdatePayload>(decoded);
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->cluster, p.cluster);
  EXPECT_EQ(up->sender, p.sender);
  EXPECT_EQ(up->epoch, p.epoch);
  EXPECT_EQ(up->newly_failed, p.newly_failed);
  EXPECT_EQ(up->all_failed, p.all_failed);
  EXPECT_EQ(up->admitted, p.admitted);
  EXPECT_EQ(up->departed, p.departed);
  EXPECT_EQ(up->members_snapshot, p.members_snapshot);
  EXPECT_EQ(up->takeover, p.takeover);
  EXPECT_EQ(up->sender_heard, p.sender_heard);
  EXPECT_EQ(up->report, p.report);
  EXPECT_EQ(up->acks, p.acks);
  EXPECT_EQ(up->learned_from, p.learned_from);
  EXPECT_EQ(up->cluster_loss_pm, p.cluster_loss_pm);
  EXPECT_EQ(up->tune_level, p.tune_level);
}

TEST(WireGolden, Checkpoint) {
  cfds::CheckpointPayload p;
  p.cluster = ClusterId{30};
  p.sender = NodeId{31};
  p.epoch = 12;
  p.seq = 6;
  p.clusterhead = NodeId{31};
  p.members = {NodeId{31}, NodeId{32}, NodeId{35}};
  p.deputies = {NodeId{32}, NodeId{35}};
  p.failed = {NodeId{33}};
  const auto decoded = golden_round_trip("checkpoint", p);
  const auto* cp = cfds::payload_cast<cfds::CheckpointPayload>(decoded);
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->cluster, p.cluster);
  EXPECT_EQ(cp->sender, p.sender);
  EXPECT_EQ(cp->epoch, p.epoch);
  EXPECT_EQ(cp->seq, p.seq);
  EXPECT_EQ(cp->clusterhead, p.clusterhead);
  EXPECT_EQ(cp->members, p.members);
  EXPECT_EQ(cp->deputies, p.deputies);
  EXPECT_EQ(cp->failed, p.failed);
}

TEST(WireGolden, UpdateRequest) {
  cfds::UpdateRequestPayload p;
  p.sender = NodeId{3};
  p.cluster = ClusterId{0};
  p.epoch = 77;
  const auto decoded = golden_round_trip("update_request", p);
  const auto* req = cfds::payload_cast<cfds::UpdateRequestPayload>(decoded);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->epoch, 77u);
}

TEST(WireGolden, UpdateForward) {
  cfds::UpdateForwardPayload p;
  p.forwarder = NodeId{4};
  p.target = NodeId{6};
  p.update = std::make_shared<cfds::HealthUpdatePayload>(sample_update());
  const auto decoded = golden_round_trip("update_forward", p);
  const auto* fwd = cfds::payload_cast<cfds::UpdateForwardPayload>(decoded);
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->forwarder, NodeId{4});
  EXPECT_EQ(fwd->target, NodeId{6});
  ASSERT_NE(fwd->update, nullptr);
  EXPECT_EQ(fwd->update->members_snapshot, sample_update().members_snapshot);
}

TEST(WireGolden, UpdateForwardWithoutNestedUpdate) {
  // Never sent by the protocol, but the codec must not crash on it.
  cfds::UpdateForwardPayload p;
  p.forwarder = NodeId{4};
  p.target = NodeId{6};
  const auto decoded = golden_round_trip("update_forward_empty", p);
  const auto* fwd = cfds::payload_cast<cfds::UpdateForwardPayload>(decoded);
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->update, nullptr);
}

TEST(WireGolden, UpdateAck) {
  cfds::UpdateAckPayload p;
  p.sender = NodeId{2};
  p.epoch = 8;
  const auto decoded = golden_round_trip("update_ack", p);
  const auto* ack = cfds::payload_cast<cfds::UpdateAckPayload>(decoded);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->sender, NodeId{2});
  EXPECT_EQ(ack->epoch, 8u);
}

// --- total decode: malformed inputs are rejected, never misparsed ----------

std::vector<std::uint8_t> valid_frame() {
  std::vector<std::uint8_t> frame;
  EXPECT_TRUE(cfds::wire::encode_frame(NodeId{7}, NodeId{42}, sample_update(),
                                       &frame));
  return frame;
}

TEST(WireMalformed, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> frame = valid_frame();
  for (std::size_t len = 0; len < frame.size(); ++len) {
    cfds::wire::DecodedFrame out;
    EXPECT_FALSE(cfds::wire::decode_frame(frame.data(), len, &out))
        << "truncation to " << len << " bytes accepted";
    EXPECT_EQ(out.payload, nullptr);
  }
}

TEST(WireMalformed, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> frame = valid_frame();
  frame.push_back(0);
  cfds::wire::DecodedFrame out;
  EXPECT_FALSE(cfds::wire::decode_frame(frame.data(), frame.size(), &out));
}

TEST(WireMalformed, BadMagicVersionAndKindAreRejected) {
  const std::vector<std::uint8_t> frame = valid_frame();
  for (std::size_t at : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    std::vector<std::uint8_t> bad = frame;
    bad[at] ^= 0xFFU;
    cfds::wire::DecodedFrame out;
    EXPECT_FALSE(cfds::wire::decode_frame(bad.data(), bad.size(), &out))
        << "corrupt byte " << at << " accepted";
  }
}

TEST(WireMalformed, OversizedListCountIsRejected) {
  // Claim 0xFFFF newly_failed entries with no bytes behind the claim.
  std::vector<std::uint8_t> frame = valid_frame();
  frame[cfds::wire::kHeaderSize + 16] = 0xFF;  // list count lo byte
  frame[cfds::wire::kHeaderSize + 17] = 0xFF;  // list count hi byte
  cfds::wire::DecodedFrame out;
  EXPECT_FALSE(cfds::wire::decode_frame(frame.data(), frame.size(), &out));
}

namespace testpayload {

struct UnroutablePayload final : cfds::Payload {
  UnroutablePayload() : Payload(cfds::PayloadKind::kTest) {}
  [[nodiscard]] std::string_view kind() const override { return "test"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 1; }
};

}  // namespace testpayload

TEST(WireMalformed, UnsupportedKindDoesNotEncode) {
  // Simulation-only payloads (formation, baselines) have no wire format;
  // encode_frame must refuse them and leave the buffer untouched.
  std::vector<std::uint8_t> frame = {0xAB};
  EXPECT_FALSE(cfds::wire::encode_frame(NodeId{1}, NodeId{2},
                                        testpayload::UnroutablePayload{},
                                        &frame));
  EXPECT_EQ(frame.size(), 1u);
  EXPECT_EQ(frame[0], 0xABu);
}

TEST(WireMalformed, EncodeAppendsAfterExistingBytes) {
  std::vector<std::uint8_t> frame = {0xAB, 0xCD};
  cfds::HeartbeatPayload p;
  p.sender = NodeId{1};
  ASSERT_TRUE(cfds::wire::encode_frame(NodeId{1}, NodeId{2}, p, &frame));
  EXPECT_EQ(frame[0], 0xABu);
  EXPECT_EQ(frame[1], 0xCDu);
  cfds::wire::DecodedFrame out;
  EXPECT_TRUE(cfds::wire::decode_frame(frame.data() + 2, frame.size() - 2,
                                       &out));
}

}  // namespace
