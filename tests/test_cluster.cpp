// Unit tests for src/cluster: roles, membership views, the centralized
// directory.

#include <gtest/gtest.h>

#include "cluster/directory.h"
#include "cluster/membership.h"
#include "cluster/roles.h"
#include "net/graph.h"
#include "net/topology.h"

namespace cfds {
namespace {

ClusterView sample_cluster() {
  ClusterView c;
  c.id = ClusterId{0};
  c.clusterhead = NodeId{0};
  c.members = {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}, NodeId{5}};
  c.deputies = {NodeId{1}, NodeId{2}};
  GatewayLink link;
  link.neighbor_cluster = ClusterId{9};
  link.neighbor_clusterhead = NodeId{9};
  link.gateway = NodeId{4};
  link.backups = {NodeId{5}};
  c.links.push_back(link);
  return c;
}

TEST(Roles, RoleResolution) {
  const ClusterView c = sample_cluster();
  EXPECT_EQ(c.role_of(NodeId{0}), Role::kClusterhead);
  EXPECT_EQ(c.role_of(NodeId{1}), Role::kDeputy);
  EXPECT_EQ(c.role_of(NodeId{4}), Role::kGateway);
  EXPECT_EQ(c.role_of(NodeId{5}), Role::kBackupGateway);
  EXPECT_EQ(c.role_of(NodeId{3}), Role::kOrdinaryMember);
  EXPECT_EQ(c.role_of(NodeId{42}), Role::kUnaffiliated);
}

TEST(Roles, GatewayLinkRanks) {
  const ClusterView cluster = sample_cluster();
  const GatewayLink& link = cluster.links.front();
  EXPECT_EQ(link.rank_of(NodeId{4}), std::optional<std::size_t>(0));
  EXPECT_EQ(link.rank_of(NodeId{5}), std::optional<std::size_t>(1));
  EXPECT_EQ(link.rank_of(NodeId{1}), std::nullopt);
}

TEST(Roles, PopulationIncludesClusterhead) {
  EXPECT_EQ(sample_cluster().population(), 6u);
  EXPECT_TRUE(sample_cluster().is_member(NodeId{0}));
  EXPECT_TRUE(sample_cluster().is_member(NodeId{3}));
  EXPECT_FALSE(sample_cluster().is_member(NodeId{10}));
}

TEST(Membership, UnaffiliatedByDefault) {
  MembershipView view(NodeId{7});
  EXPECT_FALSE(view.affiliated());
  EXPECT_EQ(view.role(), Role::kUnaffiliated);
  EXPECT_TRUE(view.expected_members().empty());
  EXPECT_TRUE(view.my_links().empty());
}

TEST(Membership, RolesAfterInstall) {
  MembershipView view(NodeId{1});
  view.set_cluster(sample_cluster());
  EXPECT_TRUE(view.affiliated());
  EXPECT_TRUE(view.is_primary_deputy());
  EXPECT_FALSE(view.is_clusterhead());
  EXPECT_EQ(view.expected_members().size(), 5u);
}

TEST(Membership, MyLinksReportsRank) {
  MembershipView gw(NodeId{4});
  gw.set_cluster(sample_cluster());
  const auto links = gw.my_links();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].rank, 0u);

  MembershipView bgw(NodeId{5});
  bgw.set_cluster(sample_cluster());
  ASSERT_EQ(bgw.my_links().size(), 1u);
  EXPECT_EQ(bgw.my_links()[0].rank, 1u);
}

TEST(Membership, TakeoverPromotesDeputy) {
  MembershipView view(NodeId{3});
  view.set_cluster(sample_cluster());
  view.apply_takeover(NodeId{1});
  EXPECT_EQ(view.cluster()->clusterhead, NodeId{1});
  EXPECT_EQ(view.cluster()->id, ClusterId{0});  // identity preserved
  EXPECT_FALSE(view.cluster()->is_member(NodeId{0}));
  EXPECT_EQ(view.cluster()->deputies.front(), NodeId{2});
}

TEST(Membership, RemoveMembersPromotesBackupGateway) {
  MembershipView view(NodeId{3});
  view.set_cluster(sample_cluster());
  view.remove_members({NodeId{4}});  // the gateway fails
  const GatewayLink& link = view.cluster()->links.front();
  EXPECT_EQ(link.gateway, NodeId{5});  // backup promoted
  EXPECT_TRUE(link.backups.empty());
  view.remove_members({NodeId{5}});
  EXPECT_FALSE(view.cluster()->links.front().gateway.is_valid());
}

TEST(Membership, AdmitIsIdempotent) {
  MembershipView view(NodeId{0});
  view.set_cluster(sample_cluster());
  view.admit_members({NodeId{8}, NodeId{8}, NodeId{1}});
  EXPECT_EQ(view.cluster()->members.size(), 6u);  // 8 added once, 1 existing
}

TEST(Membership, UpdateLinkNeighbor) {
  MembershipView view(NodeId{4});
  view.set_cluster(sample_cluster());
  view.update_link_neighbor(ClusterId{9}, NodeId{11});
  EXPECT_EQ(view.cluster()->links.front().neighbor_clusterhead, NodeId{11});
}

class DirectoryFixture : public ::testing::Test {
 protected:
  DirectoryFixture() {
    Rng rng(77);
    positions_ = uniform_rect(250, 700.0, 450.0, rng);
    directory_ = ClusterDirectory::build(positions_, 100.0);
  }
  std::vector<Vec2> positions_;
  ClusterDirectory directory_;
};

TEST_F(DirectoryFixture, EveryNonIsolatedNodeIsCovered) {
  const UnitDiskGraph graph(positions_, 100.0);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const bool covered = directory_.cluster_of(NodeId{std::uint32_t(i)});
    EXPECT_EQ(covered, graph.degree(i) > 0) << "node " << i;
  }
}

TEST_F(DirectoryFixture, MembersAreOneHopFromClusterhead) {
  for (const ClusterView& c : directory_.clusters()) {
    const Vec2 ch = positions_[c.clusterhead.value()];
    for (NodeId m : c.members) {
      EXPECT_TRUE(within_range(positions_[m.value()], ch, 100.0));
    }
  }
}

TEST_F(DirectoryFixture, ClusterheadHasLowestNidInCluster) {
  for (const ClusterView& c : directory_.clusters()) {
    for (NodeId m : c.members) EXPECT_LT(c.clusterhead, m);
  }
}

TEST_F(DirectoryFixture, MembershipIsAPartition) {
  std::size_t covered = 0;
  for (const ClusterView& c : directory_.clusters()) covered += c.population();
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (directory_.cluster_of(NodeId{std::uint32_t(i)})) ++distinct;
  }
  EXPECT_EQ(covered, distinct);  // no node in two clusters (F3 for members)
}

TEST_F(DirectoryFixture, GatewaysHearBothClusterheads) {
  for (const ClusterView& c : directory_.clusters()) {
    const Vec2 my_ch = positions_[c.clusterhead.value()];
    for (const GatewayLink& link : c.links) {
      const Vec2 other_ch = positions_[link.neighbor_clusterhead.value()];
      for (NodeId g : {link.gateway}) {
        EXPECT_TRUE(within_range(positions_[g.value()], my_ch, 100.0));
        EXPECT_TRUE(within_range(positions_[g.value()], other_ch, 100.0));
      }
      for (NodeId b : link.backups) {
        EXPECT_TRUE(within_range(positions_[b.value()], other_ch, 100.0));
      }
    }
  }
}

TEST_F(DirectoryFixture, LinksAreSymmetric) {
  for (const ClusterView& c : directory_.clusters()) {
    for (const GatewayLink& link : c.links) {
      const ClusterView* other = nullptr;
      for (const ClusterView& cand : directory_.clusters()) {
        if (cand.id == link.neighbor_cluster) other = &cand;
      }
      ASSERT_NE(other, nullptr);
      bool found = false;
      for (const GatewayLink& back : other->links) {
        if (back.neighbor_cluster == c.id) {
          found = true;
          EXPECT_EQ(back.gateway, link.gateway);
          EXPECT_EQ(back.backups, link.backups);
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST_F(DirectoryFixture, DeputiesRankedByDegree) {
  const UnitDiskGraph graph(positions_, 100.0);
  for (const ClusterView& c : directory_.clusters()) {
    for (std::size_t i = 0; i + 1 < c.deputies.size(); ++i) {
      EXPECT_GE(graph.degree(c.deputies[i].value()),
                graph.degree(c.deputies[i + 1].value()));
    }
  }
}

TEST(Directory, SingleClusterByFiat) {
  const auto dir = ClusterDirectory::single_cluster(10);
  ASSERT_EQ(dir.clusters().size(), 1u);
  const ClusterView& c = dir.clusters().front();
  EXPECT_EQ(c.clusterhead, NodeId{0});
  EXPECT_EQ(c.population(), 10u);
  EXPECT_EQ(c.deputies.size(), 2u);
  EXPECT_EQ(c.deputies.front(), NodeId{1});
}

TEST(Directory, IsolatedNodesStayOutside) {
  const std::vector<Vec2> pts{{0, 0}, {10, 0}, {5000, 5000}};
  const auto dir = ClusterDirectory::build(pts, 100.0);
  ASSERT_EQ(dir.clusters().size(), 1u);
  EXPECT_EQ(dir.cluster_of(NodeId{2}), nullptr);
}

}  // namespace
}  // namespace cfds
