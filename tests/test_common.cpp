// Unit tests for src/common: ids, time, rng, statistics.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/statistics.h"

namespace cfds {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongId, OrderingFollowsValue) {
  EXPECT_LT(NodeId{3}, NodeId{7});
  EXPECT_EQ(NodeId{5}, NodeId{5});
  EXPECT_NE(NodeId{5}, NodeId{6});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, ClusterId>);
  static_assert(!std::is_convertible_v<NodeId, ClusterId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(SimTime::seconds(2).as_micros(), 2'000'000);
  EXPECT_EQ(SimTime::millis(3).as_micros(), 3'000);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).as_seconds(), 1.5);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::millis(100);
  EXPECT_EQ(a + a, SimTime::millis(200));
  EXPECT_EQ(3 * a, SimTime::millis(300));
  EXPECT_EQ(a * 3 - a, SimTime::millis(200));
  EXPECT_LT(a, 2 * a);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(5);
  std::array<int, 7> counts{};
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) counts[rng.below(7)]++;
  for (int c : counts) EXPECT_NEAR(double(c), trials / 7.0, 600.0);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(double(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child stream should not replay the parent's continuation.
  Rng parent2(7);
  (void)parent2();  // advance past the fork draw
  EXPECT_NE(child(), parent2());
}

TEST(RunningStats, KnownMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(ProportionEstimator, EstimateAndConsistency) {
  ProportionEstimator est;
  for (int i = 0; i < 1000; ++i) est.add(i % 4 == 0);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.25);
  EXPECT_TRUE(est.consistent_with(0.25));
  EXPECT_TRUE(est.consistent_with(0.27));
  EXPECT_FALSE(est.consistent_with(0.50));
}

TEST(ProportionEstimator, ZeroSuccessesStillBracketsSmallTruth) {
  ProportionEstimator est;
  for (int i = 0; i < 1000; ++i) est.add(false);
  // Rule-of-three style fallback: 0/1000 is consistent with p ~ 1e-3.
  EXPECT_TRUE(est.consistent_with(1e-3));
  EXPECT_FALSE(est.consistent_with(0.1));
}

TEST(ProportionEstimator, MergeMatchesSequentialCounting) {
  ProportionEstimator whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const bool hit = i % 3 == 0;
    whole.add(hit);
    (i < 200 ? left : right).add(hit);
  }
  left.merge(right);
  EXPECT_EQ(left.trials(), whole.trials());
  EXPECT_EQ(left.successes(), whole.successes());
  EXPECT_DOUBLE_EQ(left.estimate(), whole.estimate());
}

TEST(ProportionEstimator, FromCountsRoundTrips) {
  const auto est = ProportionEstimator::from_counts(25, 100);
  EXPECT_EQ(est.successes(), 25);
  EXPECT_EQ(est.trials(), 100);
  EXPECT_DOUBLE_EQ(est.estimate(), 0.25);
}

TEST(WilsonInterval, BracketsTheEstimateAndStaysInUnitRange) {
  const auto mid = wilson_ci99(250, 1000);
  EXPECT_LT(mid.lo, 0.25);
  EXPECT_GT(mid.hi, 0.25);
  // Near the edges the Wilson interval stays in [0, 1] and keeps nonzero
  // width, unlike the normal approximation.
  const auto zero = wilson_ci99(0, 1000);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.02);
  const auto all = wilson_ci99(1000, 1000);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  // No observations: the interval is vacuous, not NaN.
  const auto none = wilson_ci99(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

TEST(WilsonInterval, TightensWithSampleSize) {
  const auto small = wilson_ci99(5, 20);
  const auto large = wilson_ci99(5000, 20000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Histogram, QuantilesOfUniformFill) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) hist.add(double(i) + 0.5);
  EXPECT_EQ(hist.total(), 100);
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(hist.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, ClampsOutOfRangeSamples) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(-5.0);
  hist.add(25.0);
  EXPECT_EQ(hist.total(), 2);
  EXPECT_EQ(hist.bins().front(), 1);
  EXPECT_EQ(hist.bins().back(), 1);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(first, splitmix64(state2));
  EXPECT_NE(splitmix64(state), first);
}

}  // namespace
}  // namespace cfds
