// Unit tests for src/net: node runtime, topologies, graphs, network.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/statistics.h"
#include "net/graph.h"
#include "net/network.h"
#include "net/topology.h"

namespace cfds {
namespace {

NetworkConfig small_config() {
  NetworkConfig config;
  config.seed = 3;
  return config;
}

TEST(Node, EnergyAccountingFollowsTraffic) {
  Network net(small_config(), std::make_unique<PerfectLinks>());
  Node& a = net.add_node({0, 0});
  Node& b = net.add_node({10, 0});
  (void)b;
  const double before = a.remaining_energy_uj();
  struct P final : Payload {
    P() : Payload(PayloadKind::kTest) {}
    [[nodiscard]] std::string_view kind() const override { return "p"; }
    [[nodiscard]] std::size_t size_bytes() const override { return 100; }
  };
  a.radio().send(std::make_shared<P>());
  net.simulator().run_to_completion();
  const EnergyModel& model = net.config().energy;
  EXPECT_NEAR(before - a.remaining_energy_uj(),
              model.tx_base_uj + 100 * model.tx_per_byte_uj, 1e-9);
}

TEST(Node, CrashIsFailStop) {
  Network net(small_config(), std::make_unique<PerfectLinks>());
  Node& a = net.add_node({0, 0});
  int frames = 0;
  a.add_frame_handler([&](const Reception&) { ++frames; });
  EXPECT_TRUE(a.alive());
  a.crash();
  EXPECT_FALSE(a.alive());
  EXPECT_FALSE(a.radio().powered());
  EXPECT_EQ(frames, 0);
}

TEST(Node, HandlersRunInRegistrationOrder) {
  Network net(small_config(), std::make_unique<PerfectLinks>());
  Node& a = net.add_node({0, 0});
  Node& b = net.add_node({10, 0});
  std::vector<int> order;
  b.add_frame_handler([&](const Reception&) { order.push_back(1); });
  b.add_frame_handler([&](const Reception&) { order.push_back(2); });
  struct P final : Payload {
    P() : Payload(PayloadKind::kTest) {}
    [[nodiscard]] std::string_view kind() const override { return "p"; }
    [[nodiscard]] std::size_t size_bytes() const override { return 1; }
  };
  a.radio().send(std::make_shared<P>());
  net.simulator().run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, SequentialNidAssignment) {
  Network net(small_config(), std::make_unique<PerfectLinks>());
  net.add_nodes({{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_TRUE(net.has_node(NodeId{0}));
  EXPECT_TRUE(net.has_node(NodeId{2}));
  EXPECT_FALSE(net.has_node(NodeId{3}));
  EXPECT_EQ(net.node(NodeId{1}).position(), (Vec2{1, 1}));
}

TEST(Network, ScheduledCrashFiresAtTime) {
  Network net(small_config(), std::make_unique<PerfectLinks>());
  net.add_node({0, 0});
  net.schedule_crash(NodeId{0}, SimTime::seconds(5));
  net.simulator().run_until(SimTime::seconds(4));
  EXPECT_TRUE(net.node(NodeId{0}).alive());
  net.simulator().run_until(SimTime::seconds(6));
  EXPECT_FALSE(net.node(NodeId{0}).alive());
  EXPECT_EQ(net.alive_count(), 0u);
}

TEST(Topology, UniformDiskStaysInDisk) {
  Rng rng(1);
  const Vec2 center{50, 50};
  for (Vec2 p : uniform_disk(500, center, 30.0, rng)) {
    EXPECT_LE(distance(p, center), 30.0 + 1e-9);
  }
}

TEST(Topology, UniformDiskIsAreaUniform) {
  // Inner disk of half radius should hold ~25% of the points.
  Rng rng(2);
  const auto points = uniform_disk(40000, {0, 0}, 100.0, rng);
  int inner = 0;
  for (Vec2 p : points) {
    if (p.norm() <= 50.0) ++inner;
  }
  EXPECT_NEAR(double(inner) / double(points.size()), 0.25, 0.01);
}

TEST(Topology, RectAndGridBounds) {
  Rng rng(3);
  for (Vec2 p : uniform_rect(200, 40.0, 20.0, rng)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 40.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 20.0);
  }
  const auto grid = jittered_grid(3, 4, 10.0, 0.0, rng);
  EXPECT_EQ(grid.size(), 12u);
  EXPECT_EQ(grid[5], (Vec2{10.0, 10.0}));  // row 1, col 1
}

TEST(Topology, PoissonFieldMeanCount) {
  Rng rng(4);
  RunningStats counts;
  for (int i = 0; i < 200; ++i) {
    counts.add(double(poisson_field(0.01, 100.0, 50.0, rng).size()));
  }
  EXPECT_NEAR(counts.mean(), 50.0, 2.5);  // lambda = 0.01 * 5000
}

TEST(Topology, AnalysisClusterShape) {
  Rng rng(5);
  const auto pts = analysis_cluster(50, {10, 20}, 100.0, rng);
  EXPECT_EQ(pts.size(), 50u);
  EXPECT_EQ(pts.front(), (Vec2{10, 20}));  // the CH at the centre
  const auto worst = analysis_cluster_worst_case(50, {0, 0}, 100.0, rng);
  EXPECT_NEAR(worst.back().norm(), 100.0, 1e-9);  // pinned to circumference
}

TEST(UnitDiskGraph, AdjacencyAndDegrees) {
  const std::vector<Vec2> pts{{0, 0}, {5, 0}, {11, 0}};
  const UnitDiskGraph g(pts, 6.0);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(UnitDiskGraph, HopDistances) {
  const std::vector<Vec2> pts{{0, 0}, {5, 0}, {10, 0}, {15, 0}, {100, 0}};
  const UnitDiskGraph g(pts, 6.0);
  const auto dist = g.hop_distances(0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], std::numeric_limits<std::size_t>::max());
}

TEST(UnitDiskGraph, ComponentsAndConnectivity) {
  const std::vector<Vec2> pts{{0, 0}, {5, 0}, {100, 0}, {105, 0}};
  const UnitDiskGraph g(pts, 6.0);
  const auto comp = g.components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(g.connected());
}

TEST(UnitDiskGraph, IsolatedNodes) {
  const std::vector<Vec2> pts{{0, 0}, {5, 0}, {1000, 1000}};
  const UnitDiskGraph g(pts, 6.0);
  const auto isolated = g.isolated_nodes();
  ASSERT_EQ(isolated.size(), 1u);
  EXPECT_EQ(isolated[0], 2u);
}

// --- Grid build vs all-pairs oracle -----------------------------------

/// Asserts the grid-built graph has exactly the oracle's adjacency,
/// neighbour-by-neighbour (both emit sorted lists, so spans must match).
void expect_same_adjacency(const std::vector<Vec2>& pts, double range) {
  const UnitDiskGraph grid(pts, range);
  const UnitDiskGraph brute = UnitDiskGraph::brute_force(pts, range);
  ASSERT_EQ(grid.size(), brute.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto g = grid.neighbors(i);
    const auto b = brute.neighbors(i);
    ASSERT_EQ(g.size(), b.size()) << "node " << i;
    for (std::size_t k = 0; k < g.size(); ++k) {
      EXPECT_EQ(g[k], b[k]) << "node " << i << " neighbor " << k;
    }
  }
}

TEST(UnitDiskGraph, GridMatchesBruteForceOnUniformFields) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    expect_same_adjacency(uniform_rect(300, 700.0, 450.0, rng), 100.0);
  }
}

TEST(UnitDiskGraph, GridMatchesBruteForceOnClusteredFields) {
  // Dense blobs far apart: many nodes share a grid cell, most cells empty.
  Rng rng(11);
  std::vector<Vec2> pts;
  for (const Vec2 center : {Vec2{0, 0}, Vec2{500, 20}, Vec2{250, 900}}) {
    const auto blob = uniform_disk(80, center, 40.0, rng);
    pts.insert(pts.end(), blob.begin(), blob.end());
  }
  expect_same_adjacency(pts, 100.0);
}

// --- Incremental grid vs full-rebuild oracle --------------------------

/// Asserts the incremental grid's adjacency is *byte-identical* to a
/// from-scratch UnitDiskGraph over the same placement: build_csr sorts every
/// neighbour slice, so equal edge sets must yield equal CSR arrays, and any
/// stale chain link after a move() shows up as a hard mismatch here.
void expect_csr_identical(const MobileGrid& grid) {
  const UnitDiskGraph incremental = grid.graph();
  const UnitDiskGraph rebuilt(grid.positions(), grid.range());
  ASSERT_EQ(incremental.csr_offsets().size(), rebuilt.csr_offsets().size());
  ASSERT_EQ(incremental.csr_neighbors().size(),
            rebuilt.csr_neighbors().size());
  EXPECT_EQ(0, std::memcmp(incremental.csr_offsets().data(),
                           rebuilt.csr_offsets().data(),
                           rebuilt.csr_offsets().size() * sizeof(std::size_t)));
  EXPECT_EQ(0, std::memcmp(
                   incremental.csr_neighbors().data(),
                   rebuilt.csr_neighbors().data(),
                   rebuilt.csr_neighbors().size() * sizeof(std::uint32_t)));
}

TEST(MobileGrid, IncrementalMovesMatchFullRebuild) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    Rng rng(seed);
    MobileGrid grid(uniform_rect(300, 700.0, 450.0, rng), 100.0);
    // Interleave bursts of random moves with oracle checks: short jitters
    // that mostly stay inside a cell, plus long teleports that cross many
    // cell boundaries (including into never-occupied cells and back).
    for (int burst = 0; burst < 4; ++burst) {
      for (int k = 0; k < 100; ++k) {
        const std::size_t i = grid.size() == 0 ? 0 : rng.below(grid.size());
        Vec2 p = grid.position(i);
        if (rng.bernoulli(0.25)) {
          p = Vec2{rng.uniform(-300.0, 1000.0), rng.uniform(-300.0, 750.0)};
        } else {
          p.x += rng.uniform(-30.0, 30.0);
          p.y += rng.uniform(-30.0, 30.0);
        }
        grid.move(i, p);
      }
      expect_csr_identical(grid);
    }
  }
}

TEST(MobileGrid, ForEachInRangeMatchesGraphNeighbors) {
  Rng rng(5);
  MobileGrid grid(uniform_rect(200, 500.0, 500.0, rng), 100.0);
  for (int k = 0; k < 50; ++k) {
    grid.move(rng.below(grid.size()),
              Vec2{rng.uniform(0.0, 500.0), rng.uniform(0.0, 500.0)});
  }
  const UnitDiskGraph oracle = grid.graph();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<std::uint32_t> heard;
    grid.for_each_in_range(i, [&](std::uint32_t j) { heard.push_back(j); });
    std::sort(heard.begin(), heard.end());
    const auto expected = oracle.neighbors(i);
    ASSERT_EQ(heard.size(), expected.size()) << "node " << i;
    EXPECT_TRUE(std::equal(heard.begin(), heard.end(), expected.begin()));
  }
}

TEST(UnitDiskGraph, GridMatchesBruteForceOnDegenerateFields) {
  // All nodes co-located: complete graph, one grid cell.
  expect_same_adjacency(std::vector<Vec2>(50, Vec2{3.0, 4.0}), 10.0);
  // Nodes exactly on cell boundaries and exactly at distance == range.
  const std::vector<Vec2> boundary{{0, 0},   {100, 0},  {200, 0},
                                   {0, 100}, {100, 100}, {-100, 0}};
  expect_same_adjacency(boundary, 100.0);
  // Collinear line with spacing just under the range.
  std::vector<Vec2> line;
  for (int i = 0; i < 40; ++i) line.push_back({double(i) * 99.5, 0.0});
  expect_same_adjacency(line, 100.0);
}

TEST(UnitDiskGraph, GridMatchesBruteForceOnTinyFields) {
  expect_same_adjacency({}, 100.0);            // empty
  expect_same_adjacency({{5.0, 5.0}}, 100.0);  // singleton
  Rng rng(23);
  expect_same_adjacency(uniform_rect(2, 50.0, 50.0, rng), 100.0);
}

TEST(UnitDiskGraph, NonPositiveRangeYieldsNoEdges) {
  Rng rng(5);
  const auto pts = uniform_rect(20, 100.0, 100.0, rng);
  const UnitDiskGraph g(pts, 0.0);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g.degree(i), 0u);
}

}  // namespace
}  // namespace cfds
