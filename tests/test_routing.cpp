// Tests for backbone routing and sink-directed aggregation dissemination.

#include <gtest/gtest.h>

#include <memory>

#include "aggregation/service.h"
#include "cluster/directory.h"
#include "intercluster/routing.h"
#include "net/topology.h"
#include "radio/tracer.h"
#include "sim/metrics.h"

namespace cfds {
namespace {

/// Hand-built three-cluster line directory: 0 - 1 - 2 (by cluster index).
ClusterDirectory line_directory(std::vector<Vec2>& positions) {
  // CHs at x = 0, 160, 320; one member + one gateway each side.
  positions = {{0, 0},    {160, 0},  {320, 0},  {20, 20},
               {80, 0},   {240, 0},  {150, 20}, {310, 20}};
  return ClusterDirectory::build(positions, 100.0);
}

TEST(BackboneRouting, NextHopsPointTowardTheSink) {
  std::vector<Vec2> positions;
  const auto directory = line_directory(positions);
  ASSERT_EQ(directory.clusters().size(), 3u);
  const ClusterId left = directory.clusters()[0].id;
  const ClusterId middle = directory.clusters()[1].id;
  const ClusterId right = directory.clusters()[2].id;

  const auto routing = BackboneRouting::toward(directory, right);
  EXPECT_EQ(routing.sink(), right);
  EXPECT_EQ(routing.next_hop(left), std::optional<ClusterId>(middle));
  EXPECT_EQ(routing.next_hop(middle), std::optional<ClusterId>(right));
  EXPECT_EQ(routing.next_hop(right), std::nullopt);
  EXPECT_EQ(routing.hops_from(left), 2u);
  EXPECT_EQ(routing.hops_from(middle), 1u);
  EXPECT_EQ(routing.hops_from(right), 0u);
  EXPECT_TRUE(routing.reachable(left));
}

TEST(BackboneRouting, UnreachableClustersHaveNoRoute) {
  // Two islands: clusters {0} and {far}.
  std::vector<Vec2> positions{{0, 0}, {20, 0}, {5000, 0}, {5020, 0}};
  const auto directory = ClusterDirectory::build(positions, 100.0);
  ASSERT_EQ(directory.clusters().size(), 2u);
  const ClusterId a = directory.clusters()[0].id;
  const ClusterId b = directory.clusters()[1].id;
  const auto routing = BackboneRouting::toward(directory, a);
  EXPECT_FALSE(routing.reachable(b));
  EXPECT_EQ(routing.next_hop(b), std::nullopt);
  EXPECT_EQ(routing.hops_from(b), std::numeric_limits<std::size_t>::max());
}

struct SinkFixture {
  explicit SinkFixture(bool directed) {
    NetworkConfig net_config;
    net_config.seed = 59;
    network = std::make_unique<Network>(net_config,
                                        std::make_unique<PerfectLinks>());
    Rng placement(59);
    positions = uniform_rect(220, 500.0, 350.0, placement);
    network->add_nodes(positions);
    directory = ClusterDirectory::build(positions, 100.0);
    for (std::uint32_t i = 0; i < 220; ++i) {
      views.push_back(std::make_unique<MembershipView>(NodeId{i}));
      ptrs.push_back(views.back().get());
    }
    directory.install(*network, ptrs);

    FdsConfig fds_config;
    fds_config.heartbeat_interval = SimTime::seconds(2);
    fds_config.external_heartbeats = true;
    fds = std::make_unique<FdsService>(*network, ptrs, fds_config);
    aggregation = std::make_unique<AggregationService>(
        *network, *fds, ptrs,
        [](NodeId node, std::uint64_t) { return double(node.value()); });
    sink = directory.clusters().front().id;
    routing = BackboneRouting::toward(directory, sink);
    if (directed) aggregation->set_routing(&routing);
  }

  std::unique_ptr<Network> network;
  std::vector<Vec2> positions;
  ClusterDirectory directory;
  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  std::unique_ptr<FdsService> fds;
  std::unique_ptr<AggregationService> aggregation;
  ClusterId sink;
  BackboneRouting routing;
};

TEST(SinkRouting, SinkReceivesEveryReachableClusterAggregate) {
  SinkFixture fixture(/*directed=*/true);
  fixture.aggregation->run_epochs(1, SimTime::zero());

  std::size_t reachable = 0;
  for (const ClusterView& cluster : fixture.directory.clusters()) {
    if (fixture.routing.reachable(cluster.id)) ++reachable;
  }
  AggregationAgent& sink_ch = fixture.aggregation->agent_for(
      NodeId{fixture.sink.value()});
  EXPECT_EQ(sink_ch.aggregates_for(0).size(), reachable);

  // The sink's global view covers all affiliated nodes of reachable
  // clusters.
  std::size_t expected = 0;
  for (const ClusterView& cluster : fixture.directory.clusters()) {
    if (fixture.routing.reachable(cluster.id)) {
      expected += cluster.population();
    }
  }
  EXPECT_EQ(sink_ch.global_view(0).count, expected);
}

TEST(SinkRouting, DirectedModeUsesFewerAggregateFrames) {
  SinkFixture flood(/*directed=*/false);
  SinkFixture directed(/*directed=*/true);

  FrameTracer flood_tracer;
  flood_tracer.attach(flood.network->channel());
  flood.aggregation->run_epochs(1, SimTime::zero());

  FrameTracer directed_tracer;
  directed_tracer.attach(directed.network->channel());
  directed.aggregation->run_epochs(1, SimTime::zero());

  EXPECT_LT(directed_tracer.frames_of("agg"),
            flood_tracer.frames_of("agg"));
  // Flooding informs every CH; routing informs the path to the sink only.
  EXPECT_GT(flood_tracer.frames_of("agg"), 0u);
}

TEST(SinkRouting, DirectedModeInformsNonSinksStrictlyLess) {
  // Directed dissemination targets the sink; other CHs learn only their own
  // aggregate plus whatever transit frames they happen to overhear
  // (promiscuous receiving is inherent), so at least some CH must know
  // strictly less than the sink does — unlike flooding, where every CH
  // converges to the full set.
  SinkFixture fixture(/*directed=*/true);
  fixture.aggregation->run_epochs(1, SimTime::zero());
  const std::size_t at_sink =
      fixture.aggregation->agent_for(NodeId{fixture.sink.value()})
          .aggregates_for(0)
          .size();
  std::size_t strictly_less = 0;
  for (const ClusterView& cluster : fixture.directory.clusters()) {
    if (cluster.id == fixture.sink) continue;
    AggregationAgent& agent =
        fixture.aggregation->agent_for(cluster.clusterhead);
    const std::size_t known = agent.aggregates_for(0).size();
    EXPECT_GE(known, 1u);  // every CH holds its own aggregate
    if (known < at_sink) ++strictly_less;
  }
  EXPECT_GT(strictly_less, 0u);
}

}  // namespace
}  // namespace cfds
