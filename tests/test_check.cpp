// Tests for the model checker (src/check/): fingerprint determinism and
// per-field sensitivity, exploration determinism, reduction soundness on
// n=3 worlds, and counterexample-trace round-trips. The mutation-kill side
// of the checker's own validation lives in tools/check_model.sh.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/explorer.h"
#include "check/fingerprint.h"
#include "check/trace.h"
#include "check/world.h"
#include "cluster/roles.h"
#include "fds/detector.h"
#include "fds/failure_log.h"
#include "fds/messages.h"

namespace cfds::check {
namespace {

// ---------------------------------------------------------------------------
// Fingerprint hashing

TEST(HasherTest, SameInputSameDigest) {
  Hasher a;
  Hasher b;
  a.mix(1);
  a.mix(2);
  b.mix(1);
  b.mix(2);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(HasherTest, OrderAndBoundariesMatter) {
  Hasher ab;
  ab.mix(1);
  ab.mix(2);
  Hasher ba;
  ba.mix(2);
  ba.mix(1);
  EXPECT_NE(ab.digest(), ba.digest());

  const std::uint8_t bytes[3] = {'a', 'b', 'c'};
  Hasher split;
  split.mix_bytes(bytes, 2);
  split.mix_bytes(bytes + 2, 1);
  Hasher whole;
  whole.mix_bytes(bytes, 3);
  EXPECT_NE(split.digest(), whole.digest());
}

std::uint64_t cluster_digest(const ClusterView& view) {
  Hasher h;
  StateFingerprinter::mix_cluster(h, view);
  return h.digest();
}

TEST(FingerprintTest, EveryClusterFieldIsSensitive) {
  ClusterView base;
  base.id = ClusterId(3);
  base.clusterhead = NodeId(1);
  base.members = {NodeId(2), NodeId(4)};
  base.deputies = {NodeId(2)};

  ClusterView v = base;
  v.id = ClusterId(4);
  EXPECT_NE(cluster_digest(base), cluster_digest(v));
  v = base;
  v.clusterhead = NodeId(2);
  EXPECT_NE(cluster_digest(base), cluster_digest(v));
  v = base;
  v.members.push_back(NodeId(5));
  EXPECT_NE(cluster_digest(base), cluster_digest(v));
  v = base;
  v.deputies = {NodeId(4)};
  EXPECT_NE(cluster_digest(base), cluster_digest(v));
  EXPECT_EQ(cluster_digest(base), cluster_digest(base));
}

std::uint64_t evidence_digest(const RoundEvidence& evidence) {
  Hasher h;
  StateFingerprinter::mix_evidence(h, evidence);
  return h.digest();
}

TEST(FingerprintTest, EveryEvidenceFieldIsSensitive) {
  RoundEvidence base;
  base.heartbeats.insert(NodeId(1));
  base.digest_from(NodeId(2)).insert(NodeId(1));

  RoundEvidence e;
  e.heartbeats = base.heartbeats;
  e.digest_from(NodeId(2)).insert(NodeId(1));
  e.ch_update_heard = true;
  EXPECT_NE(evidence_digest(base), evidence_digest(e));

  e.ch_update_heard = false;
  EXPECT_EQ(evidence_digest(base), evidence_digest(e));
  e.heartbeats.insert(NodeId(3));
  EXPECT_NE(evidence_digest(base), evidence_digest(e));

  e.heartbeats = base.heartbeats;
  e.digest_from(NodeId(2)).insert(NodeId(3));
  EXPECT_NE(evidence_digest(base), evidence_digest(e));

  // The slot table must be transparent to the fingerprint: recording the
  // same digests through a recycled slot (erase + re-add) hashes identically
  // to recording them fresh.
  RoundEvidence recycled;
  recycled.heartbeats.insert(NodeId(1));
  recycled.digest_from(NodeId(7)).insert(NodeId(8));
  recycled.erase_digest(NodeId(7));
  recycled.digest_from(NodeId(2)).insert(NodeId(1));
  EXPECT_EQ(evidence_digest(base), evidence_digest(recycled));
}

std::uint64_t log_digest(const FailureLog& log) {
  Hasher h;
  StateFingerprinter::mix_failure_log(h, log);
  return h.digest();
}

TEST(FingerprintTest, FailureLogEntriesAreSensitive) {
  FailureLog base;
  ASSERT_TRUE(base.record(
      NodeId(4), {SimTime::millis(100), /*epoch=*/2, NodeId(1)}));

  FailureLog extra;
  ASSERT_TRUE(extra.record(
      NodeId(4), {SimTime::millis(100), /*epoch=*/2, NodeId(1)}));
  EXPECT_EQ(log_digest(base), log_digest(extra));
  ASSERT_TRUE(extra.record(
      NodeId(5), {SimTime::millis(100), /*epoch=*/2, NodeId(1)}));
  EXPECT_NE(log_digest(base), log_digest(extra));

  FailureLog other_reporter;
  ASSERT_TRUE(other_reporter.record(
      NodeId(4), {SimTime::millis(100), /*epoch=*/2, NodeId(2)}));
  EXPECT_NE(log_digest(base), log_digest(other_reporter));

  // Entry::epoch and Entry::learned_at are FP-EXEMPT (fingerprint.cpp): no
  // protocol decision reads them back, so they must NOT split states.
  FailureLog other_epoch;
  ASSERT_TRUE(other_epoch.record(
      NodeId(4), {SimTime::millis(200), /*epoch=*/3, NodeId(1)}));
  EXPECT_EQ(log_digest(base), log_digest(other_epoch));
}

std::uint64_t payload_digest(const Payload& payload) {
  Hasher h;
  StateFingerprinter::mix_payload(h, payload);
  return h.digest();
}

TEST(FingerprintTest, PayloadContentIsSensitive) {
  HeartbeatPayload base;
  base.sender = NodeId(2);

  HeartbeatPayload other_sender;
  other_sender.sender = NodeId(3);
  EXPECT_NE(payload_digest(base), payload_digest(other_sender));

  HeartbeatPayload unmarked;
  unmarked.sender = NodeId(2);
  unmarked.marked = false;
  EXPECT_NE(payload_digest(base), payload_digest(unmarked));

  HeartbeatPayload same;
  same.sender = NodeId(2);
  EXPECT_EQ(payload_digest(base), payload_digest(same));
}

// ---------------------------------------------------------------------------
// Exploration

CheckOptions small_world() {
  CheckOptions opts;
  opts.nodes = 3;
  opts.epochs = 2;
  return opts;
}

TEST(ExplorerTest, ExplorationIsDeterministic) {
  CheckOptions opts = small_world();
  opts.max_drops = 1;
  ExploreLimits limits;
  const ExploreResult a = explore(opts, limits);
  const ExploreResult b = explore(opts, limits);
  EXPECT_FALSE(a.counterexample.has_value());
  EXPECT_GT(a.unique_states, 0u);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.pruned_runs, b.pruned_runs);
  EXPECT_EQ(a.unique_states, b.unique_states);
}

TEST(ExplorerTest, StateBudgetIsHonoured) {
  CheckOptions opts = small_world();
  opts.max_drops = 2;
  const ExploreResult unbounded = explore(opts, ExploreLimits{});
  ASSERT_FALSE(unbounded.budget_exhausted);

  ExploreLimits limits;
  limits.max_states = 50;
  const ExploreResult capped = explore(opts, limits);
  EXPECT_TRUE(capped.budget_exhausted);
  // The budget is checked between runs, so the final run may overshoot by
  // the handful of states it visits — but exploration stops right there.
  EXPECT_GE(capped.unique_states, 50u);
  EXPECT_LT(capped.unique_states, unbounded.unique_states);
}

// The receiver-major reduction must not change the verdict: on clean n=3
// worlds both explorations are violation-free, and because states are
// fingerprinted only at barrier crossings (where commuting deliveries to
// different receivers have already merged), both modes must reach exactly
// the same crossing-state set.
TEST(ExplorerTest, ReductionPreservesTheViolationSet) {
  CheckOptions opts = small_world();
  opts.max_crashes = 1;
  opts.max_drops = 1;
  ExploreLimits limits;

  opts.reduction = true;
  const ExploreResult reduced = explore(opts, limits);
  opts.reduction = false;
  const ExploreResult full = explore(opts, limits);

  EXPECT_FALSE(reduced.counterexample.has_value());
  EXPECT_FALSE(full.counterexample.has_value());
  EXPECT_FALSE(reduced.budget_exhausted);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_GT(reduced.unique_states, 0u);
  EXPECT_EQ(reduced.unique_states, full.unique_states);
}

TEST(ExplorerTest, ReplayRejectsAnExhaustedChoiceTrace) {
  CheckOptions opts = small_world();
  opts.max_drops = 1;
  const ReplayOutcome outcome = replay(opts, {});
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_FALSE(outcome.violation.has_value());
}

// ---------------------------------------------------------------------------
// Trace serialization

CheckTrace sample_trace() {
  CheckTrace trace;
  trace.options.nodes = 4;
  trace.options.deputies = 1;
  trace.options.epochs = 3;
  trace.options.max_crashes = 1;
  trace.options.max_recoveries = 1;
  trace.options.max_drops = 2;
  trace.options.checkpoint = true;
  trace.options.checkpoint_interval = 1;
  trace.options.reduction = false;
  trace.mutation = "skip_incarnation_bump";
  trace.choices = {{ChoiceKind::kFault, 3, 1, 0, 0},
                   {ChoiceKind::kDrop, 2, 0, 1, 2},
                   {ChoiceKind::kOrder, 4, 2, 7, 1}};
  Violation v;
  v.invariant = "I-V4";
  v.detail = "heartbeat from node 0 carries incarnation 0, world count is 1";
  v.epoch = 1;
  v.barrier = 2;
  trace.violation = v;
  trace.fault_events = {{false, NodeId(0), 300000}, {true, NodeId(0), 700000}};
  return trace;
}

TEST(CheckTraceTest, JsonlRoundTrip) {
  const CheckTrace trace = sample_trace();
  std::string error;
  const auto parsed = parse_jsonl(to_jsonl(trace), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(to_jsonl(*parsed), to_jsonl(trace));
  EXPECT_EQ(parsed->mutation, "skip_incarnation_bump");
  ASSERT_EQ(parsed->choices.size(), 3u);
  EXPECT_EQ(parsed->choices[1].kind, ChoiceKind::kDrop);
  ASSERT_TRUE(parsed->violation.has_value());
  EXPECT_EQ(parsed->violation->invariant, "I-V4");
  ASSERT_EQ(parsed->fault_events.size(), 2u);
  EXPECT_TRUE(parsed->fault_events[1].recover);
}

TEST(CheckTraceTest, FaultPlanTailIsSelfContained) {
  const std::string plan = fault_plan_jsonl(sample_trace());
  EXPECT_NE(plan.find("\"fault_plan\":1"), std::string::npos);
  EXPECT_NE(plan.find("\"fault\":\"crash\""), std::string::npos);
  EXPECT_NE(plan.find("\"fault\":\"recover\""), std::string::npos);
  EXPECT_EQ(plan.find("\"choice\""), std::string::npos);
}

TEST(CheckTraceTest, ParseRejectsMalformedTraces) {
  std::string error;
  // No header line.
  EXPECT_FALSE(
      parse_jsonl("{\"choice\":{\"kind\":\"drop\",\"count\":2,\"chosen\":0,"
                  "\"a\":0,\"b\":0}}\n",
                  &error)
          .has_value());
  const std::string header = to_jsonl(sample_trace()).substr(
      0, to_jsonl(sample_trace()).find('\n') + 1);
  // A chosen index at or past the count cannot have been recorded.
  EXPECT_FALSE(parse_jsonl(header +
                               "{\"choice\":{\"kind\":\"drop\",\"count\":2,"
                               "\"chosen\":2,\"a\":0,\"b\":0}}\n",
                           &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  // Unknown choice kinds and line shapes are errors, not skips.
  EXPECT_FALSE(parse_jsonl(header +
                               "{\"choice\":{\"kind\":\"warp\",\"count\":2,"
                               "\"chosen\":0,\"a\":0,\"b\":0}}\n",
                           &error)
                   .has_value());
  EXPECT_FALSE(parse_jsonl(header + "{\"bogus\":1}\n", &error).has_value());
}

}  // namespace
}  // namespace cfds::check
