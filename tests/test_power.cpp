// Tests for sleep/wakeup power management (Section 6 extension): announced
// sleep windows must not trigger false detections; silent sleeping must
// (that is the hazard the paper flags); clock skew must be tolerated up to
// a fraction of Thop.

#include <gtest/gtest.h>

#include "power/duty_cycle.h"
#include "sim/scenario.h"

namespace cfds {
namespace {

ScenarioConfig base_config(std::uint64_t seed = 61) {
  ScenarioConfig config;
  config.width = 500.0;
  config.height = 350.0;
  config.node_count = 220;
  config.loss_p = 0.0;
  config.seed = seed;
  return config;
}

TEST(DutyCycle, AnnouncedSleepersAreNotFalselyDetected) {
  Scenario scenario(base_config());
  scenario.setup();
  scenario.run_epochs(1);

  DutyCycleConfig dc_config;
  dc_config.sleep_fraction = 0.3;
  dc_config.sleep_epochs = 2;
  dc_config.announce = true;
  DutyCycleScheduler scheduler(scenario.network(), scenario.fds(), dc_config,
                               Rng(5));
  const auto sleepers = scheduler.begin_window(
      scenario.network().simulator().now(), scenario.config().heartbeat_interval);
  ASSERT_GT(sleepers.size(), 10u);

  scenario.run_epochs(4);  // covers the window and the wake-up
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);
  EXPECT_EQ(scheduler.asleep_now(), 0u);  // everyone woke up
}

TEST(DutyCycle, SilentSleepersAreFalselyDetected) {
  Scenario scenario(base_config());
  scenario.setup();
  scenario.run_epochs(1);

  DutyCycleConfig dc_config;
  dc_config.sleep_fraction = 0.3;
  dc_config.sleep_epochs = 2;
  dc_config.announce = false;  // the paper's hazard configuration
  DutyCycleScheduler scheduler(scenario.network(), scenario.fds(), dc_config,
                               Rng(5));
  const auto sleepers = scheduler.begin_window(
      scenario.network().simulator().now(), scenario.config().heartbeat_interval);
  ASSERT_GT(sleepers.size(), 10u);

  scenario.run_epochs(2);
  // Every silent sleeper is reported failed by its CH (p = 0: no evidence
  // of life can possibly arrive).
  EXPECT_EQ(scenario.metrics().false_detections(), sleepers.size());
}

TEST(DutyCycle, SleepersRejoinSeamlesslyAfterWaking) {
  Scenario scenario(base_config());
  scenario.setup();
  scenario.run_epochs(1);

  DutyCycleConfig dc_config;
  dc_config.sleep_fraction = 0.25;
  dc_config.announce = true;
  DutyCycleScheduler scheduler(scenario.network(), scenario.fds(), dc_config,
                               Rng(7));
  const auto sleepers = scheduler.begin_window(
      scenario.network().simulator().now(), scenario.config().heartbeat_interval);
  scenario.run_epochs(6);
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);
  // After the window, a real crash among former sleepers is still caught.
  ASSERT_FALSE(sleepers.empty());
  scenario.network().crash(sleepers.front());
  scenario.run_epochs(1);
  const auto first = scenario.metrics().first_detection(sleepers.front());
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->suspect_was_alive);
}

TEST(DutyCycle, ExpiredExemptionNoLongerShieldsACrash) {
  // A node announces 1 epoch of sleep but then crashes while asleep: after
  // the exemption runs out the CH must flag it.
  Scenario scenario(base_config());
  scenario.setup();
  scenario.run_epochs(1);

  DutyCycleConfig dc_config;
  dc_config.sleep_fraction = 1.0;  // deterministic pick: all OMs
  dc_config.sleep_epochs = 1;
  DutyCycleScheduler scheduler(scenario.network(), scenario.fds(), dc_config,
                               Rng(9));
  const auto sleepers = scheduler.begin_window(
      scenario.network().simulator().now(), scenario.config().heartbeat_interval);
  ASSERT_FALSE(sleepers.empty());
  const NodeId victim = sleepers.front();
  scenario.network().crash(victim);  // dies in its sleep

  scenario.run_epochs(1);  // exempt execution: no detection yet
  EXPECT_FALSE(scenario.metrics().first_detection(victim).has_value());
  scenario.run_epochs(2);  // exemption spent: now it must be flagged
  EXPECT_TRUE(scenario.metrics().first_detection(victim).has_value());
}

TEST(DutyCycle, DigestRelayShieldsLostNotices) {
  // Under loss, a sleeper's notice can miss the CH; the digest relay lets
  // any member that overheard it deliver the exemption instead.
  auto false_positives = [](bool relay) {
    ScenarioConfig config = base_config(67);
    config.loss_p = 0.25;
    config.fds.relay_sleep_notices = relay;
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(1);
    DutyCycleConfig dc;
    dc.sleep_fraction = 0.4;
    dc.sleep_epochs = 2;
    DutyCycleScheduler scheduler(scenario.network(), scenario.fds(), dc,
                                 Rng(11));
    // Side effect only: who sleeps is irrelevant to the detection count.
    (void)scheduler.begin_window(scenario.network().simulator().now(),
                                 scenario.config().heartbeat_interval);
    scenario.run_epochs(3);
    return scenario.metrics().false_detections();
  };
  const std::size_t without = false_positives(false);
  const std::size_t with = false_positives(true);
  EXPECT_GT(without, 0u);  // the leak exists at p = 0.25
  EXPECT_LT(with, without);
  EXPECT_LE(with, 1u);  // and the relay all but eliminates it
}

TEST(ClockSkew, SmallSkewIsHarmless) {
  ScenarioConfig config = base_config();
  config.fds.max_clock_skew = SimTime::millis(10);  // Thop / 10
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(3);
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);
  scenario.run_epochs(2);
  EXPECT_TRUE(scenario.metrics().first_detection(victim).has_value());
}

TEST(ClockSkew, LargeSkewBreaksRoundAlignment) {
  // Skew comparable to a full round: heartbeats land outside their round,
  // evidence goes missing, and false detections appear — quantifying the
  // paper's "clock rate close to accurate" assumption.
  ScenarioConfig config = base_config(63);
  config.loss_p = 0.0;
  config.fds.max_clock_skew = SimTime::millis(250);  // 2.5 * Thop
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(3);
  EXPECT_GT(scenario.metrics().false_detections(), 0u);
}

}  // namespace
}  // namespace cfds
