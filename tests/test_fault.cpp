// Tests for the fault-injection engine: FaultPlan serialization, the
// injector's crash/recover/freeze semantics, crash-recovery rejoin, DCH
// takeover arbitration when the old CH comes back, and the chaos oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "fault/oracle.h"
#include "sim/scenario.h"

namespace cfds::fault {
namespace {

ChaosProfile test_profile() {
  ChaosProfile profile;
  profile.node_count = 40;
  profile.width = 400.0;
  profile.height = 300.0;
  profile.range = 100.0;
  return profile;
}

/// Small fault-free deployment with crash-recovery semantics on. Loss is
/// zero so every protocol step is deterministic and convergence is fast.
ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.width = 400.0;
  config.height = 300.0;
  config.node_count = 40;
  config.loss_p = 0.0;
  config.seed = seed;
  config.fds.recovery_enabled = true;
  return config;
}

/// Any affiliated plain member (not CH, not deputy).
NodeId find_plain_member(Scenario& scenario) {
  for (MembershipView* view : scenario.views()) {
    if (view->affiliated() && !view->is_clusterhead() && !view->is_deputy() &&
        scenario.network().node(view->self()).alive()) {
      return view->self();
    }
  }
  ADD_FAILURE() << "no plain member found";
  return NodeId::invalid();
}

/// A clusterhead that has at least one deputy.
MembershipView* find_ch_with_deputy(Scenario& scenario) {
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead() && !view->cluster()->deputies.empty()) {
      return view;
    }
  }
  ADD_FAILURE() << "no clusterhead with a deputy found";
  return nullptr;
}

/// Alive nodes currently acting as clusterhead of cluster `cid`.
std::vector<NodeId> acting_chs(Scenario& scenario, std::uint32_t cid) {
  std::vector<NodeId> heads;
  for (MembershipView* view : scenario.views()) {
    if (scenario.network().node(view->self()).alive() &&
        view->is_clusterhead() && view->cluster()->id.value() == cid) {
      heads.push_back(view->self());
    }
  }
  return heads;
}

TEST(FaultPlanTest, RandomIsDeterministic) {
  const ChaosProfile profile = test_profile();
  const FaultPlan a = FaultPlan::random(42, profile);
  const FaultPlan b = FaultPlan::random(42, profile);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.events.empty());
  EXPECT_NE(a, FaultPlan::random(43, profile));
}

TEST(FaultPlanTest, JsonlRoundTrip) {
  const FaultPlan plan = FaultPlan::random(7, test_profile());
  std::string error;
  const auto parsed = FaultPlan::parse_jsonl(plan.to_jsonl(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlanTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse_jsonl("{\"fault\":\"warp_core\"}", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse_jsonl("{\"fault\":\"crash\"}", &error));
}

// Every kind, with field values a double-typed parser would corrupt: 64-bit
// timestamps above 2^53 and a full-width seed must survive the round trip
// bit for bit.
TEST(FaultPlanTest, JsonlRoundTripCoversEveryKind) {
  FaultPlan plan;
  plan.seed = 0xFFFFFFFFFFFFFFFFull;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.node = 7;
  crash.at_us = (std::int64_t(1) << 60) + 1;
  FaultEvent recover;
  recover.kind = FaultKind::kRecover;
  recover.node = 7;
  recover.at_us = (std::int64_t(1) << 60) + 2;
  FaultEvent freeze;
  freeze.kind = FaultKind::kFreeze;
  freeze.node = 3;
  freeze.at_us = 250000;
  freeze.duration_us = (std::int64_t(1) << 53) + 1;
  FaultEvent link;
  link.kind = FaultKind::kLinkDown;
  link.node = 1;
  link.peer = 0xFFFFFFFFu;
  link.at_us = 500000;
  link.duration_us = 750000;
  FaultEvent jam;
  jam.kind = FaultKind::kJam;
  jam.x = 120.5;
  jam.y = 80.25;
  jam.radius = 55.0;
  jam.at_us = 1000000;
  jam.duration_us = 2000000;
  FaultEvent drift;
  drift.kind = FaultKind::kClockDrift;
  drift.node = 9;
  drift.start_epoch = 2;
  drift.end_epoch = 0x20000000000001ull;  // 2^53 + 1
  drift.per_epoch_us = -40000;            // drift may run behind, not ahead
  FaultEvent loss;
  loss.kind = FaultKind::kLoss;
  loss.x = 0.75;
  loss.at_us = 300000;
  loss.duration_us = 600000;
  plan.events = {crash, recover, freeze, link, jam, drift, loss};

  std::string error;
  const auto parsed = FaultPlan::parse_jsonl(plan.to_jsonl(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlanTest, ParseRejectsNonIntegerAndOutOfRangeFields) {
  std::string error;
  // Fractional and exponent forms are not integers.
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"crash\",\"node\":1,\"at_us\":1.5}", &error));
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"crash\",\"node\":1,\"at_us\":1e3}", &error));
  // A negative value must fail an unsigned field, not wrap.
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"crash\",\"node\":-1,\"at_us\":0}", &error));
  // Out of range: node is u32, at_us is i64.
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"crash\",\"node\":4294967296,\"at_us\":0}", &error));
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"crash\",\"node\":1,\"at_us\":9223372036854775808}",
      &error));
  // Wrong type entirely.
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"crash\",\"node\":\"x\",\"at_us\":0}", &error));
}

TEST(FaultPlanTest, ParseRejectsMissingPerKindFields) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"freeze\",\"node\":1,\"at_us\":0}", &error));
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"link_down\",\"node\":1,\"at_us\":0,\"duration_us\":1}",
      &error));
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"jam\",\"x\":1,\"y\":2,\"at_us\":0,\"duration_us\":1}",
      &error));
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"clock_drift\",\"node\":1,\"start_epoch\":0,"
      "\"per_epoch_us\":1}",
      &error));
  EXPECT_FALSE(FaultPlan::parse_jsonl(
      "{\"fault\":\"loss\",\"at_us\":0,\"duration_us\":1}", &error));
}

TEST(FaultPlanTest, ParsePreservesLargeIntegersExactly) {
  // 2^60 + 1 is not representable as a double; a strtod-based parser would
  // silently round it to 2^60.
  const std::string text =
      "{\"fault\":\"crash\",\"node\":3,\"at_us\":1152921504606846977}\n";
  std::string error;
  const auto plan = FaultPlan::parse_jsonl(text, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 1u);
  EXPECT_EQ(plan->events[0].at_us, 1152921504606846977ll);
}

TEST(FaultPlanTest, RandomRespectsMixAndHorizon) {
  const ChaosProfile profile = test_profile();
  const FaultPlan plan = FaultPlan::random(11, profile);
  const std::int64_t horizon_us =
      std::int64_t(profile.fault_epochs) *
      profile.epoch_interval.as_micros();
  int crashes = 0, freezes = 0, links = 0, jams = 0, drifts = 0;
  for (const FaultEvent& e : plan.events) {
    EXPECT_GE(e.at_us, 0);
    EXPECT_LE(e.at_us + e.duration_us, horizon_us);
    switch (e.kind) {
      case FaultKind::kCrash: ++crashes; break;
      case FaultKind::kRecover: break;
      case FaultKind::kFreeze: ++freezes; break;
      case FaultKind::kLinkDown: ++links; break;
      case FaultKind::kJam: ++jams; break;
      case FaultKind::kClockDrift:
        ++drifts;
        EXPECT_LE(e.end_epoch, profile.fault_epochs);
        break;
      case FaultKind::kLoss: break;  // opt-in via loss_bursts, 0 here
    }
  }
  EXPECT_EQ(crashes, profile.crashes);
  EXPECT_EQ(freezes, profile.freezes);
  EXPECT_EQ(links, profile.link_downs);
  EXPECT_EQ(jams, profile.jams);
  EXPECT_EQ(drifts, profile.clock_drifts);
}

TEST(SwitchableLossTest, TogglesBetweenInnerAndPerfect) {
  SwitchableLoss loss(std::make_unique<BernoulliLoss>(1.0));
  Rng rng(1);
  EXPECT_TRUE(loss.lost(NodeId{0}, {}, NodeId{1}, {}, rng));
  loss.set_perfect(true);
  EXPECT_FALSE(loss.lost(NodeId{0}, {}, NodeId{1}, {}, rng));
  loss.set_perfect(false);
  EXPECT_TRUE(loss.lost(NodeId{0}, {}, NodeId{1}, {}, rng));
}

TEST(FaultInjectorTest, CrashedNodeRecoversAndRejoins) {
  Scenario scenario(small_config(3));
  scenario.setup();
  scenario.run_epochs(2);
  const NodeId victim = find_plain_member(scenario);
  const SimTime phi = scenario.config().heartbeat_interval;

  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at_us = SimTime::millis(100).as_micros();
  crash.node = victim.value();
  FaultEvent recover;
  recover.kind = FaultKind::kRecover;
  recover.at_us = 2 * phi.as_micros() + SimTime::millis(500).as_micros();
  recover.node = victim.value();
  plan.events = {crash, recover};

  FaultInjector injector(scenario);
  injector.install(plan);

  scenario.run_epochs(2);
  EXPECT_FALSE(scenario.network().node(victim).alive());
  EXPECT_TRUE(scenario.metrics().first_detection(victim).has_value());

  scenario.run_epochs(1);
  EXPECT_TRUE(scenario.network().node(victim).alive());
  EXPECT_EQ(scenario.network().node(victim).incarnation(), 1u);

  scenario.run_epochs(6);
  const MembershipView& view = *scenario.views()[victim.value()];
  EXPECT_TRUE(view.affiliated());
  EXPECT_TRUE(scenario.network().node(victim).marked());
  EXPECT_TRUE(ChaosOracle::check(scenario).empty());
}

TEST(FaultInjectorTest, FrozenNodeThawsWithStaleStateAndReconciles) {
  Scenario scenario(small_config(5));
  scenario.setup();
  scenario.run_epochs(2);
  const NodeId victim = find_plain_member(scenario);
  const SimTime phi = scenario.config().heartbeat_interval;

  FaultPlan plan;
  FaultEvent freeze;
  freeze.kind = FaultKind::kFreeze;
  freeze.at_us = SimTime::millis(100).as_micros();
  freeze.duration_us = 3 * phi.as_micros();
  freeze.node = victim.value();
  plan.events = {freeze};

  FaultInjector injector(scenario);
  injector.install(plan);

  // During the omission window the cluster declares the silent node failed;
  // the node itself never notices it was gone.
  scenario.run_epochs(3);
  EXPECT_TRUE(scenario.network().node(victim).alive());
  EXPECT_TRUE(scenario.metrics().first_detection(victim).has_value());

  // After the thaw it detects its own staleness and re-runs affiliation;
  // the failure-log entries about it are reconciled away.
  injector.clear_channel_faults();
  scenario.run_epochs(8);
  EXPECT_TRUE(scenario.views()[victim.value()]->affiliated());
  EXPECT_TRUE(ChaosOracle::check(scenario).empty());
}

// Regression: a node crashing mid-round used to leave its deputy-check and
// forward timers pending; they fired on the dead node and resurrected its
// protocol activity. Timers are generation-guarded now.
TEST(FaultInjectorTest, CrashMidRoundCancelsPendingTimers) {
  Scenario scenario(small_config(9));
  scenario.setup();
  scenario.run_epochs(2);
  MembershipView* ch_view = find_ch_with_deputy(scenario);
  ASSERT_NE(ch_view, nullptr);
  const NodeId deputy = ch_view->cluster()->deputies.front();

  // Crash the primary deputy 1.5 rounds into the execution: its heartbeat is
  // out, digests are in flight, and the T+3Thop deputy check is pending.
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at_us = SimTime::millis(150).as_micros();
  crash.node = deputy.value();
  plan.events = {crash};

  FaultInjector injector(scenario);
  injector.install(plan);
  scenario.run_epochs(1);
  EXPECT_FALSE(scenario.network().node(deputy).alive());
  const auto sent_at_death =
      scenario.network().node(deputy).radio().counters().frames_sent;

  scenario.run_epochs(4);
  // A dead node's pending timers must not fire: not one more frame.
  EXPECT_EQ(scenario.network().node(deputy).radio().counters().frames_sent,
            sent_at_death);
  EXPECT_TRUE(scenario.metrics().first_detection(deputy).has_value());
  scenario.run_epochs(4);
  EXPECT_TRUE(ChaosOracle::check(scenario).empty());
}

// Section 4.2 arbitration: the CH crashes, the highest-ranked deputy takes
// over, then the old CH recovers. The old CH must come back as a plain
// member; exactly one acting CH, stable for 10 further rounds.
TEST(ChRecoveryTest, DeputyKeepsClusterWhenOldChRejoins) {
  Scenario scenario(small_config(13));
  scenario.setup();
  scenario.run_epochs(2);
  MembershipView* ch_view = find_ch_with_deputy(scenario);
  ASSERT_NE(ch_view, nullptr);
  const NodeId old_ch = ch_view->self();
  const NodeId deputy = ch_view->cluster()->deputies.front();
  const std::uint32_t cid = ch_view->cluster()->id.value();

  scenario.network().crash(old_ch);
  scenario.run_epochs(3);
  ASSERT_EQ(acting_chs(scenario, cid), std::vector<NodeId>{deputy});

  scenario.network().recover(old_ch);
  scenario.run_epochs(5);
  const MembershipView& rejoined = *scenario.views()[old_ch.value()];
  EXPECT_TRUE(rejoined.affiliated());
  EXPECT_FALSE(rejoined.is_clusterhead());
  EXPECT_EQ(rejoined.cluster()->clusterhead, deputy);

  // No oscillation: the arbitration outcome must hold round after round.
  for (int round = 0; round < 10; ++round) {
    scenario.run_epochs(1);
    EXPECT_EQ(acting_chs(scenario, cid), std::vector<NodeId>{deputy})
        << "round " << round;
    EXPECT_FALSE(scenario.views()[old_ch.value()]->is_clusterhead())
        << "round " << round;
  }
  EXPECT_TRUE(ChaosOracle::check(scenario).empty());
}

TEST(ChaosTrialTest, SameSeedIsByteIdentical) {
  const ChaosConfig config;
  const ChaosResult a = run_chaos_trial(config, 17);
  const ChaosResult b = run_chaos_trial(config, 17);
  EXPECT_EQ(a.summary_json(), b.summary_json());
  EXPECT_EQ(a.plan, b.plan);
}

TEST(ChaosTrialTest, ReplayFromPlanMatchesGeneratedRun) {
  const ChaosConfig config;
  const ChaosResult direct = run_chaos_trial(config, 63);
  std::string error;
  const auto plan = FaultPlan::parse_jsonl(direct.plan.to_jsonl(), &error);
  ASSERT_TRUE(plan.has_value()) << error;
  const ChaosResult replayed = replay_chaos_trial(config, 63, *plan);
  EXPECT_EQ(replayed.summary_json(), direct.summary_json());
}

TEST(ChaosCampaignTest, TwentySeedsPassTheOracle) {
  const ChaosConfig config;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosResult result = run_chaos_trial(config, seed);
    EXPECT_TRUE(result.passed())
        << "seed " << seed << ": " << result.violations.front();
  }
}

TEST(ChaosOracleTest, FlagsDeadMemberThenClearsAfterConvergence) {
  Scenario scenario(small_config(21));
  scenario.setup();
  scenario.run_epochs(2);
  const NodeId victim = find_plain_member(scenario);
  scenario.network().crash(victim);

  // Immediately after the crash the views still carry the dead node (I5).
  const auto before = ChaosOracle::check(scenario);
  EXPECT_FALSE(before.empty());

  // One detection cycle later the protocol has purged it everywhere.
  scenario.run_epochs(4);
  EXPECT_TRUE(ChaosOracle::check(scenario).empty());
}

}  // namespace
}  // namespace cfds::fault
