// Tests for the system-level completeness model (analysis/backbone).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/backbone.h"

namespace cfds::analysis {
namespace {

TEST(LinkDelivery, BoundaryCases) {
  EXPECT_DOUBLE_EQ(link_delivery_probability(0.0, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(link_delivery_probability(1.0, 3, 5, 5), 0.0);
  // Single bare attempt: success = 1 - [p + (1-p)p] = (1-p)^2
  // (GW must hear the update AND land its one forward).
  const double p = 0.3;
  EXPECT_NEAR(link_delivery_probability(p, 0, 0, 0), (1 - p) * (1 - p),
              1e-12);
}

TEST(LinkDelivery, MonotoneInEveryRedundancyKnob) {
  const double p = 0.4;
  const double base = link_delivery_probability(p, 0, 0, 0);
  EXPECT_GT(link_delivery_probability(p, 1, 0, 0), base);
  EXPECT_GT(link_delivery_probability(p, 0, 1, 0), base);
  EXPECT_GT(link_delivery_probability(p, 0, 0, 1), base);
  EXPECT_GT(link_delivery_probability(p, 2, 2, 2),
            link_delivery_probability(p, 1, 1, 1));
}

TEST(LinkDelivery, MonotoneDecreasingInLoss) {
  double previous = 1.1;
  for (double p : {0.05, 0.2, 0.35, 0.5, 0.8}) {
    const double value = link_delivery_probability(p, 2, 2, 2);
    EXPECT_LT(value, previous);
    previous = value;
  }
}

BackboneGraph line(std::size_t n) {
  BackboneGraph graph;
  graph.cluster_count = n;
  for (std::size_t i = 0; i + 1 < n; ++i) graph.links.emplace_back(i, i + 1);
  return graph;
}

TEST(BackboneCompleteness, PerfectLinksReachEverything) {
  Rng rng(1);
  const auto result = backbone_completeness(line(10), 0, 1.0, 200, rng);
  EXPECT_DOUBLE_EQ(result.p_all_reached, 1.0);
  EXPECT_DOUBLE_EQ(result.expected_coverage, 1.0);
}

TEST(BackboneCompleteness, DeadLinksReachOnlyTheOrigin) {
  Rng rng(2);
  const auto result = backbone_completeness(line(10), 0, 0.0, 200, rng);
  EXPECT_DOUBLE_EQ(result.p_all_reached, 0.0);
  EXPECT_NEAR(result.expected_coverage, 0.1, 1e-12);
}

TEST(BackboneCompleteness, LineMatchesClosedForm) {
  // On a line from one end, all reached iff all n-1 links operate.
  Rng rng(3);
  const double s = 0.9;
  const auto result = backbone_completeness(line(6), 0, s, 200000, rng);
  EXPECT_NEAR(result.p_all_reached, std::pow(s, 5), 0.005);
  // Expected coverage: (1 + sum_{k=1..5} s^k) / 6.
  double expected = 1.0;
  for (int k = 1; k <= 5; ++k) expected += std::pow(s, k);
  EXPECT_NEAR(result.expected_coverage, expected / 6.0, 0.003);
}

TEST(BackboneCompleteness, RedundantPathsBeatTheLine) {
  // A cycle adds a second path; reliability must beat the open line.
  BackboneGraph cycle = line(8);
  cycle.links.emplace_back(7, 0);
  Rng rng(4);
  const double s = 0.8;
  const auto with_cycle = backbone_completeness(cycle, 0, s, 50000, rng);
  const auto without = backbone_completeness(line(8), 0, s, 50000, rng);
  EXPECT_GT(with_cycle.p_all_reached, without.p_all_reached + 0.05);
}

TEST(BackboneCompleteness, OriginChoiceMattersOnAsymmetricGraphs) {
  // A star: from the hub everything is one hop; from a leaf, two.
  BackboneGraph star;
  star.cluster_count = 6;
  for (std::size_t leaf = 1; leaf < 6; ++leaf) star.links.emplace_back(0, leaf);
  Rng rng(5);
  const double s = 0.7;
  const auto from_hub = backbone_completeness(star, 0, s, 50000, rng);
  const auto from_leaf = backbone_completeness(star, 1, s, 50000, rng);
  EXPECT_GT(from_hub.expected_coverage, from_leaf.expected_coverage);
}

}  // namespace
}  // namespace cfds::analysis
