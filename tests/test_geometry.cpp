// Unit tests for src/common/geometry: lens areas, triple intersections,
// quadrature.

#include <gtest/gtest.h>

#include <cmath>

#include "common/geometry.h"
#include "common/rng.h"

namespace cfds {
namespace {

TEST(Geometry, DistanceAndRange) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_TRUE(within_range({0, 0}, {3, 4}, 5.0));   // closed ball
  EXPECT_FALSE(within_range({0, 0}, {3, 4}, 4.99));
}

TEST(Geometry, DiskContains) {
  const Disk d{{1.0, 1.0}, 2.0};
  EXPECT_TRUE(d.contains({1.0, 1.0}));
  EXPECT_TRUE(d.contains({3.0, 1.0}));  // boundary
  EXPECT_FALSE(d.contains({3.5, 1.0}));
  EXPECT_DOUBLE_EQ(d.area(), 4.0 * M_PI);
}

TEST(Geometry, LensDegenerateCases) {
  const Disk a{{0, 0}, 1.0};
  EXPECT_DOUBLE_EQ(lens_area(a, Disk{{3, 0}, 1.0}), 0.0);      // disjoint
  EXPECT_DOUBLE_EQ(lens_area(a, Disk{{2, 0}, 1.0}), 0.0);      // tangent
  EXPECT_DOUBLE_EQ(lens_area(a, Disk{{0, 0}, 5.0}), M_PI);     // nested
  EXPECT_NEAR(lens_area(a, a), M_PI, 1e-12);                   // identical
}

TEST(Geometry, LensAtEqualRadiiDistanceR) {
  // The paper's An: 2*pi*R^2/3 - sqrt(3)/2 * R^2.
  const double r = 100.0;
  const double expected = 2.0 * M_PI * r * r / 3.0 -
                          std::sqrt(3.0) / 2.0 * r * r;
  EXPECT_NEAR(worst_case_overlap_area(r), expected, 1e-6);
  EXPECT_NEAR(worst_case_overlap_fraction(),
              worst_case_overlap_area(r) / (M_PI * r * r), 1e-12);
}

TEST(Geometry, LensIsSymmetric) {
  const Disk a{{0, 0}, 2.0};
  const Disk b{{1.5, 0.7}, 1.2};
  EXPECT_NEAR(lens_area(a, b), lens_area(b, a), 1e-12);
}

TEST(Geometry, LensMatchesMonteCarlo) {
  const Disk a{{0, 0}, 2.0};
  const Disk b{{1.0, 0.5}, 1.5};
  Rng rng(11);
  int inside = 0;
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) {
    // Sample in a's bounding box.
    const Vec2 pt{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    if (a.contains(pt) && b.contains(pt)) ++inside;
  }
  const double mc = 16.0 * double(inside) / double(trials);
  EXPECT_NEAR(lens_area(a, b), mc, 0.05);
}

TEST(Geometry, TripleIntersectionReducesToLens) {
  // Third disk engulfing the other two: triple == pairwise lens.
  const Disk a{{0, 0}, 1.0};
  const Disk b{{1.0, 0}, 1.0};
  const Disk huge{{0.5, 0}, 50.0};
  EXPECT_NEAR(triple_intersection_area(a, b, huge), lens_area(a, b), 1e-5);
}

TEST(Geometry, TripleIntersectionEmptyWhenDisjoint) {
  const Disk a{{0, 0}, 1.0};
  const Disk b{{10, 0}, 1.0};
  const Disk c{{5, 5}, 1.0};
  EXPECT_NEAR(triple_intersection_area(a, b, c), 0.0, 1e-9);
}

TEST(Geometry, TripleIntersectionMatchesMonteCarlo) {
  const Disk a{{0, 0}, 2.0};
  const Disk b{{1.5, 0.0}, 2.0};
  const Disk c{{0.7, 1.2}, 1.5};
  Rng rng(13);
  int inside = 0;
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) {
    const Vec2 pt{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
    if (a.contains(pt) && b.contains(pt) && c.contains(pt)) ++inside;
  }
  const double mc = 16.0 * double(inside) / double(trials);
  EXPECT_NEAR(triple_intersection_area(a, b, c), mc, 0.05);
}

TEST(Geometry, QuadratureExactOnPolynomials) {
  EXPECT_NEAR(integrate([](double x) { return x * x; }, 0.0, 3.0), 9.0, 1e-9);
  EXPECT_NEAR(integrate([](double x) { return std::sin(x); }, 0.0, M_PI), 2.0,
              1e-9);
  EXPECT_DOUBLE_EQ(integrate([](double) { return 1.0; }, 2.0, 2.0), 0.0);
}

TEST(Geometry, QuadratureHandlesSharpFeatures) {
  // Semi-circle area via sqrt integrand (infinite derivative at endpoints).
  const double val =
      integrate([](double x) { return std::sqrt(1.0 - x * x); }, -1.0, 1.0);
  EXPECT_NEAR(val, M_PI / 2.0, 1e-6);
}

}  // namespace
}  // namespace cfds
