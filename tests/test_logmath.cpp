// Unit tests for src/common/logmath: log-space combinatorics.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/logmath.h"

namespace cfds {
namespace {

TEST(LogMath, FactorialSmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogMath, BinomialCoefficients) {
  EXPECT_NEAR(log_binomial_coefficient(10, 0), 0.0, 1e-10);
  EXPECT_NEAR(log_binomial_coefficient(10, 10), 0.0, 1e-10);
  EXPECT_NEAR(log_binomial_coefficient(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(log_binomial_coefficient(52, 5), std::log(2598960.0), 1e-8);
}

TEST(LogMath, PascalIdentityHolds) {
  for (int n = 2; n <= 60; n += 7) {
    for (int k = 1; k < n; ++k) {
      const double lhs = log_binomial_coefficient(n, k);
      const double rhs = log_sum_exp(log_binomial_coefficient(n - 1, k - 1),
                                     log_binomial_coefficient(n - 1, k));
      ASSERT_NEAR(lhs, rhs, 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogMath, SafeLogHandlesZero) {
  EXPECT_TRUE(std::isinf(safe_log(0.0)));
  EXPECT_LT(safe_log(0.0), 0.0);
  EXPECT_TRUE(std::isinf(safe_log(-1.0)));
  EXPECT_NEAR(safe_log(std::exp(1.0)), 1.0, 1e-12);
}

TEST(LogMath, LogSumExpPairs) {
  EXPECT_NEAR(log_sum_exp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(log_sum_exp(ninf, std::log(3.0)), std::log(3.0), 1e-12);
  EXPECT_TRUE(std::isinf(log_sum_exp(ninf, ninf)));
}

TEST(LogMath, LogSumExpExtremeMagnitudes) {
  // exp(-1000) + exp(-1001) evaluated without underflow.
  const double result = log_sum_exp(-1000.0, -1001.0);
  EXPECT_NEAR(result, -1000.0 + std::log1p(std::exp(-1.0)), 1e-12);
}

TEST(LogMath, LogSumExpSpan) {
  const std::vector<double> terms{std::log(1.0), std::log(2.0), std::log(3.0)};
  EXPECT_NEAR(log_sum_exp(terms), std::log(6.0), 1e-12);
  EXPECT_TRUE(std::isinf(log_sum_exp(std::span<const double>{})));
}

TEST(LogMath, BinomialPmfSumsToOne) {
  for (double p : {0.05, 0.3, 0.7}) {
    std::vector<double> terms;
    for (int k = 0; k <= 40; ++k) terms.push_back(log_binomial_pmf(40, k, p));
    EXPECT_NEAR(log_sum_exp(terms), 0.0, 1e-10) << "p=" << p;
  }
}

TEST(LogMath, BinomialPmfEndpoints) {
  EXPECT_NEAR(log_binomial_pmf(10, 0, 0.0), 0.0, 1e-12);   // certain
  EXPECT_NEAR(log_binomial_pmf(10, 10, 1.0), 0.0, 1e-12);  // certain
  EXPECT_TRUE(std::isinf(log_binomial_pmf(10, 11, 0.5)));  // impossible
  EXPECT_TRUE(std::isinf(log_binomial_pmf(10, -1, 0.5)));
}

TEST(LogMath, Log1mExpAccuracy) {
  // log(1 - exp(x)) across both branches of Maechler's algorithm. For
  // moderate x the naive evaluation is an accurate reference ...
  for (double x : {-0.1, -0.5, -1.0, -10.0, -100.0}) {
    const double expected = std::log1p(-std::exp(x));
    EXPECT_NEAR(log1m_exp(x), expected, 1e-10) << "x=" << x;
  }
  // ... while for tiny |x| the naive form loses precision — the whole point
  // of the algorithm — so compare against the series 1 - exp(x) ~ -x.
  EXPECT_NEAR(log1m_exp(-1e-10), std::log(1e-10), 1e-9);
  EXPECT_NEAR(log1m_exp(-1e-14), std::log(1e-14), 1e-9);
  EXPECT_TRUE(std::isinf(log1m_exp(0.0)));
}

TEST(LogMath, CiShrinksWithTrials) {
  const double wide = binomial_ci99_halfwidth(50, 100);
  const double narrow = binomial_ci99_halfwidth(5000, 10000);
  EXPECT_LT(narrow, wide);
  EXPECT_GT(wide, 0.0);
}

}  // namespace
}  // namespace cfds
