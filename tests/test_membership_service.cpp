// Group-membership behaviour on top of the FDS (Section 2.4: the service is
// "intended to support group membership management"): voluntary departure
// (unsubscription), plus robustness checks around the spatial index and
// crashes landing mid-execution.

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace cfds {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.width = 450.0;
  config.height = 300.0;
  config.node_count = 160;
  config.loss_p = 0.0;
  config.seed = 73;
  return config;
}

TEST(Unsubscription, LeaverIsRemovedWithoutFailureReport) {
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId leaver = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      leaver = view->self();
      break;
    }
  }
  ASSERT_TRUE(leaver.is_valid());
  const ClusterId old_cluster = scenario.views()[leaver.value()]->cluster()->id;

  scenario.fds().agent_for(leaver).announce_leave();
  scenario.run_epochs(2);

  // Not reported failed by anyone, and expected by no CH of its old cluster.
  EXPECT_TRUE(scenario.metrics().detections().empty());
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead() && view->cluster()->id == old_cluster) {
      EXPECT_FALSE(view->cluster()->is_member(leaver));
    }
  }
  EXPECT_FALSE(scenario.network().node(leaver).marked());
}

TEST(Unsubscription, LeaverCanResubscribeLater) {
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId leaver = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      leaver = view->self();
      break;
    }
  }
  scenario.fds().agent_for(leaver).announce_leave();
  scenario.run_epochs(1);
  EXPECT_FALSE(scenario.views()[leaver.value()]->affiliated());
  // Rejoining: the next (unmarked) heartbeat acts as a fresh subscription.
  scenario.fds().agent_for(leaver).rejoin();
  scenario.run_epochs(2);
  EXPECT_TRUE(scenario.views()[leaver.value()]->affiliated());
  EXPECT_TRUE(scenario.network().node(leaver).marked());
  EXPECT_TRUE(scenario.metrics().detections().empty());
}

TEST(Unsubscription, LateNoticeStillHonouredNextEpoch) {
  // A leave notice landing after this epoch's R-3 must be processed by the
  // next execution rather than the leaver being reported failed.
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId leaver = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      leaver = view->self();
      break;
    }
  }
  // Fire the notice between epochs, then power the node off (it walked
  // away): its silence next epoch must not be read as a crash.
  scenario.fds().agent_for(leaver).announce_leave();
  scenario.network().node(leaver).radio().set_powered(false);
  scenario.run_epochs(3);
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);
  EXPECT_TRUE(scenario.metrics().detections().empty());
}

TEST(Robustness, CrashDuringExecutionIsStillHandled) {
  // The paper assumes nodes do not fail *during* an FDS execution; the
  // implementation must nevertheless stay consistent if one does (the node
  // heartbeats in R-1, then dies before its digest).
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  // Next epoch starts at now; kill the victim half a round in (after its
  // heartbeat, before its digest).
  const SimTime mid_r1 = scenario.network().simulator().now() +
                         SimTime::millis(150);
  scenario.schedule_crash(victim, mid_r1);
  scenario.run_epochs(1);
  // Its R-1 heartbeat counts as evidence, so this execution clears it...
  EXPECT_FALSE(scenario.metrics().first_detection(victim).has_value());
  scenario.run_epochs(1);
  // ...and the next execution flags it.
  const auto first = scenario.metrics().first_detection(victim);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->suspect_was_alive);
}

TEST(Robustness, MovingNodesKeepReceivingAfterReindex) {
  // Spatial-index regression check: a node teleported across many grid
  // cells must immediately hear traffic at its new location.
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId wanderer = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      wanderer = view->self();
      break;
    }
  }
  Node& node = scenario.network().node(wanderer);
  const auto frames_before = node.radio().counters().frames_received;
  // Move far across the field (several cells), near another CH.
  NodeId far_ch = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead() &&
        distance(scenario.network().node(view->self()).position(),
                 node.position()) > 250.0) {
      far_ch = view->self();
    }
  }
  ASSERT_TRUE(far_ch.is_valid());
  node.radio().set_position(scenario.network().node(far_ch).position() +
                            Vec2{3.0, 3.0});
  scenario.run_epochs(1);
  EXPECT_GT(node.radio().counters().frames_received, frames_before);
}

}  // namespace
}  // namespace cfds
