// Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "event/simulator.h"

// Global allocation counter for the zero-allocation tests below. This binary
// overrides ::operator new/delete; the counter only ticks between
// begin_counting/end_counting so the rest of the suite is unaffected.
namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// The counting operator new allocates with std::malloc, so the matching
// operator delete releases with std::free. GCC's caller-side heuristic only
// sees "delete expression ends in free()" and flags every inlined delete
// site; the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace cfds {
namespace {

std::size_t count_allocations(const std::function<void()>& body) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(Simulator, SimultaneousEventsKeepSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(SimTime::millis(10), [&] {
    sim.schedule_after(SimTime::millis(5), [&] { fired = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_EQ(fired, SimTime::millis(15));
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(10), [&] { ++count; });
  sim.schedule_at(SimTime::millis(20), [&] { ++count; });
  sim.schedule_at(SimTime::millis(30), [&] { ++count; });
  sim.run_until(SimTime::millis(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), SimTime::millis(100));  // clock advances to deadline
}

TEST(Simulator, CancelledEventsDoNotFire) {
  Simulator sim;
  bool fired = false;
  TimerHandle handle =
      sim.schedule_at(SimTime::millis(10), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  TimerHandle handle = sim.schedule_at(SimTime::millis(1), [] {});
  sim.run_to_completion();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op after firing
  handle.cancel();
}

TEST(Simulator, DefaultHandleIsInert) {
  TimerHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) sim.schedule_after(SimTime::millis(1), chain);
  };
  sim.schedule_at(SimTime::zero(), chain);
  sim.run_to_completion();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), SimTime::millis(49));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++count; });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime::millis(i), [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CancelledEventsAreNotCounted) {
  Simulator sim;
  auto h = sim.schedule_at(SimTime::millis(1), [] {});
  sim.schedule_at(SimTime::millis(2), [] {});
  h.cancel();
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 1u);
}

// --- Slot reuse and handle generations --------------------------------

TEST(Simulator, StaleHandleCannotCancelARecycledSlot) {
  Simulator sim;
  TimerHandle stale = sim.schedule_at(SimTime::millis(1), [] {});
  sim.run_to_completion();  // frees the slot
  bool fired = false;
  // The freelist hands the same slot to the next event; the stale handle's
  // generation no longer matches, so cancel() must be a no-op.
  sim.schedule_at(SimTime::millis(2), [&] { fired = true; });
  stale.cancel();
  EXPECT_FALSE(stale.pending());
  sim.run_to_completion();
  EXPECT_TRUE(fired);
}

TEST(Simulator, HandleIsNotPendingWhileItsEventRuns) {
  Simulator sim;
  TimerHandle handle;
  bool pending_inside = true;
  handle = sim.schedule_at(SimTime::millis(1),
                           [&] { pending_inside = handle.pending(); });
  sim.run_to_completion();
  EXPECT_FALSE(pending_inside);
}

TEST(Simulator, ManyCancellationsRecycleSlotsWithoutGrowth) {
  Simulator sim;
  for (int round = 0; round < 1000; ++round) {
    auto h = sim.schedule_at(sim.now() + SimTime::millis(2), [] {});
    sim.schedule_at(sim.now() + SimTime::millis(1), [] {});
    h.cancel();
    sim.run_until(sim.now() + SimTime::millis(2));
  }
  EXPECT_EQ(sim.events_executed(), 1000u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// --- Allocation-free hot path -----------------------------------------

TEST(Simulator, ScheduleFireIsAllocationFreeForSmallCaptures) {
  Simulator sim;
  sim.reserve(64);
  long sink = 0;
  // Warm up: let the slab and heap vectors reach steady state.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(sim.now() + SimTime::micros(1), [&sink] { ++sink; });
    (void)sim.step();  // exactly one event is queued
  }
  // 40 bytes of captures — inside EventFn's 48-byte inline buffer.
  std::array<char, 32> blob{};
  const std::size_t allocations = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim.now() + SimTime::micros(1),
                      [&sink, blob] { sink += blob[0]; });
      (void)sim.step();  // exactly one event is queued
    }
  });
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(sink, 100);
}

TEST(Simulator, CancellationPathIsAllocationFreeToo) {
  Simulator sim;
  sim.reserve(64);
  for (int i = 0; i < 100; ++i) {
    auto h = sim.schedule_at(sim.now() + SimTime::micros(2), [] {});
    sim.schedule_at(sim.now() + SimTime::micros(1), [] {});
    h.cancel();
    sim.run_until(sim.now() + SimTime::micros(2));
  }
  const std::size_t allocations = count_allocations([&] {
    for (int i = 0; i < 1000; ++i) {
      auto h = sim.schedule_at(sim.now() + SimTime::micros(2), [] {});
      sim.schedule_at(sim.now() + SimTime::micros(1), [] {});
      h.cancel();
      sim.run_until(sim.now() + SimTime::micros(2));
    }
  });
  EXPECT_EQ(allocations, 0u);
}

TEST(Simulator, OversizedCapturesFallBackToTheHeapAndStillRun) {
  Simulator sim;
  std::array<char, 64> blob{};  // > kInlineCapacity: must heap-allocate
  blob[0] = 1;
  long sum = 0;
  const std::size_t allocations = count_allocations([&] {
    sim.schedule_at(SimTime::micros(1), [&sum, blob] { sum += blob[0]; });
  });
  EXPECT_GE(allocations, 1u);
  sim.run_to_completion();
  EXPECT_EQ(sum, 1);
}

TEST(EventFn, MoveTransfersTheCallable) {
  int fired = 0;
  EventFn fn([&fired] { ++fired; });
  EventFn moved(std::move(fn));
  moved();
  EXPECT_EQ(fired, 1);
}

// --- Calendar queue vs binary heap equivalence ------------------------
//
// The calendar queue's ordering contract is "bit-identical firing order to
// the binary heap". These tests run the same workload on a kCalendar and a
// kHeap simulator and require the recorded (fire time, event id) streams to
// match exactly.

/// One firing as observed by the workload: when it ran and which logical
/// event it was.
struct Firing {
  std::int64_t at_us;
  int id;
  bool operator==(const Firing& other) const {
    return at_us == other.at_us && id == other.id;
  }
};

/// Randomized workload: a mix of near events (calendar buckets), same-tick
/// ties, cancellations, far events (the calendar's overflow heap), and
/// events scheduled from inside callbacks. Driven by a seeded Rng, so both
/// queue modes replay the identical operation stream.
std::vector<Firing> run_random_workload(QueueMode mode, std::uint64_t seed) {
  Simulator sim(mode);
  Rng rng(seed);
  std::vector<Firing> firings;
  std::vector<TimerHandle> handles;
  int next_id = 0;

  const auto record = [&](int id) {
    firings.push_back({sim.now().as_micros(), id});
  };

  for (int round = 0; round < 40; ++round) {
    // A burst of near events, several sharing the exact same tick.
    const SimTime tick = sim.now() + SimTime::micros(
        std::int64_t(rng.below(200'000)));
    for (int i = 0; i < 8; ++i) {
      const int id = next_id++;
      handles.push_back(sim.schedule_at(tick, [&record, id] { record(id); }));
    }
    // Events spread across bucket boundaries, some rescheduling children
    // with sub-bucket delays (the splice-insert path).
    for (int i = 0; i < 12; ++i) {
      const int id = next_id++;
      const SimTime delay = SimTime::micros(std::int64_t(rng.below(500'000)));
      handles.push_back(sim.schedule_after(delay, [&, id] {
        record(id);
        if (rng.below(2) == 0) {
          const int child = next_id++;
          sim.schedule_after(SimTime::micros(std::int64_t(rng.below(300))),
                             [&record, child] { record(child); });
        }
      }));
    }
    // A far event beyond the calendar horizon (overflow-heap path).
    const int far_id = next_id++;
    handles.push_back(sim.schedule_after(
        SimTime::seconds(5) + SimTime::micros(std::int64_t(rng.below(1000))),
        [&record, far_id] { record(far_id); }));
    // Cancel a random half-dozen of everything still pending.
    for (int i = 0; i < 6 && !handles.empty(); ++i) {
      handles[rng.below(handles.size())].cancel();
    }
    // Drain partway so scheduling interleaves with firing.
    sim.run_until(sim.now() + SimTime::micros(
        std::int64_t(rng.below(400'000))));
  }
  sim.run_to_completion();
  return firings;
}

TEST(QueueEquivalence, CalendarMatchesHeapOnRandomizedWorkloads) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    const auto calendar = run_random_workload(QueueMode::kCalendar, seed);
    const auto heap = run_random_workload(QueueMode::kHeap, seed);
    ASSERT_FALSE(calendar.empty());
    EXPECT_EQ(calendar, heap) << "diverged for seed " << seed;
  }
}

TEST(QueueEquivalence, SameTickTiesFireInSchedulingOrderInBothModes) {
  for (QueueMode mode : {QueueMode::kCalendar, QueueMode::kHeap}) {
    Simulator sim(mode);
    std::vector<int> order;
    std::vector<TimerHandle> handles;
    const SimTime tick = SimTime::millis(3);
    for (int i = 0; i < 32; ++i) {
      handles.push_back(sim.schedule_at(tick, [&order, i] {
        order.push_back(i);
      }));
    }
    for (int i = 1; i < 32; i += 2) handles[std::size_t(i)].cancel();
    sim.run_to_completion();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[std::size_t(i)], 2 * i);
  }
}

TEST(QueueEquivalence, FarEventsMergeWithNearEventsInOrder) {
  // Events beyond the calendar's horizon live in the overflow heap; the
  // kernel must still interleave them with calendar events by (time, seq).
  Simulator sim(QueueMode::kCalendar);
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(10), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(1), [&] {
    order.push_back(1);
    sim.schedule_after(SimTime::millis(1), [&] { order.push_back(2); });
  });
  sim.schedule_at(SimTime::seconds(10), [&] { order.push_back(4); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
}

// --- Batched fan-out scheduling ---------------------------------------

TEST(SimulatorBatch, FiringsCarryTheirIndexAndInterleaveBySequence) {
  Simulator sim;
  std::vector<std::pair<char, std::uint32_t>> order;
  // Interleave batch firings with ordinary events at the same instant:
  // sequence numbers are drawn in add order, so the global order must be
  // exactly the add order.
  sim.schedule_at(SimTime::millis(1), [&] { order.push_back({'e', 0}); });
  auto batch = sim.begin_batch(
      [](void* ctx, std::uint32_t index) {
        static_cast<std::vector<std::pair<char, std::uint32_t>>*>(ctx)
            ->push_back({'b', index});
      },
      &order);
  sim.add_batch_event(batch, SimTime::millis(1), 7);
  sim.schedule_at(SimTime::millis(1), [&] { order.push_back({'e', 1}); });
  sim.add_batch_event(batch, SimTime::millis(1), 9);
  sim.run_to_completion();
  const std::vector<std::pair<char, std::uint32_t>> want = {
      {'e', 0}, {'b', 7}, {'e', 1}, {'b', 9}};
  EXPECT_EQ(order, want);
}

TEST(SimulatorBatch, SlotIsRecycledAfterTheLastFiring) {
  Simulator sim;
  int firings = 0;
  auto batch = sim.begin_batch(
      [](void* ctx, std::uint32_t) { ++*static_cast<int*>(ctx); }, &firings);
  for (std::uint32_t i = 0; i < 5; ++i) {
    sim.add_batch_event(batch, SimTime::micros(i + 1), i);
  }
  EXPECT_EQ(sim.pending_events(), 5u);
  sim.run_to_completion();
  EXPECT_EQ(firings, 5);
  EXPECT_EQ(sim.pending_events(), 0u);
  // The released slot goes back on the freelist: an ordinary timer can
  // claim it and a full schedule/fire cycle still works.
  bool fired = false;
  sim.schedule_after(SimTime::micros(1), [&] { fired = true; });
  sim.run_to_completion();
  EXPECT_TRUE(fired);
}

TEST(SimulatorBatch, BatchSchedulingIsAllocationFree) {
  Simulator sim;
  // Simulated time keeps advancing into fresh calendar buckets, so the
  // reserve must be large enough to pre-grow every bucket past this
  // workload's peak per-bucket occupancy (16 entries within one width).
  sim.reserve(16 * CalendarQueue::kNumBuckets);
  int firings = 0;
  const auto fire_batch = [&] {
    auto batch = sim.begin_batch(
        [](void* ctx, std::uint32_t) { ++*static_cast<int*>(ctx); },
        &firings);
    for (std::uint32_t i = 0; i < 16; ++i) {
      sim.add_batch_event(batch, SimTime::micros(i + 1), i);
    }
    sim.run_until(sim.now() + SimTime::micros(32));
  };
  for (int i = 0; i < 100; ++i) fire_batch();  // warm the slab and buckets
  const std::size_t allocations = count_allocations([&] {
    for (int i = 0; i < 100; ++i) fire_batch();
  });
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(firings, 200 * 16);
}

}  // namespace
}  // namespace cfds
