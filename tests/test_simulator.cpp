// Unit tests for the discrete-event kernel.

#include <gtest/gtest.h>

#include <vector>

#include "event/simulator.h"

namespace cfds {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(Simulator, SimultaneousEventsKeepSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = SimTime::zero();
  sim.schedule_at(SimTime::millis(10), [&] {
    sim.schedule_after(SimTime::millis(5), [&] { fired = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_EQ(fired, SimTime::millis(15));
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(10), [&] { ++count; });
  sim.schedule_at(SimTime::millis(20), [&] { ++count; });
  sim.schedule_at(SimTime::millis(30), [&] { ++count; });
  sim.run_until(SimTime::millis(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), SimTime::millis(100));  // clock advances to deadline
}

TEST(Simulator, CancelledEventsDoNotFire) {
  Simulator sim;
  bool fired = false;
  TimerHandle handle =
      sim.schedule_at(SimTime::millis(10), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  TimerHandle handle = sim.schedule_at(SimTime::millis(1), [] {});
  sim.run_to_completion();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op after firing
  handle.cancel();
}

TEST(Simulator, DefaultHandleIsInert) {
  TimerHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) sim.schedule_after(SimTime::millis(1), chain);
  };
  sim.schedule_at(SimTime::zero(), chain);
  sim.run_to_completion();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), SimTime::millis(49));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(SimTime::millis(1), [&] { ++count; });
  sim.schedule_at(SimTime::millis(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(SimTime::millis(i), [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CancelledEventsAreNotCounted) {
  Simulator sim;
  auto h = sim.schedule_at(SimTime::millis(1), [] {});
  sim.schedule_at(SimTime::millis(2), [] {});
  h.cancel();
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 1u);
}

}  // namespace
}  // namespace cfds
