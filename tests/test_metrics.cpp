// Tests for the metrics layer and the failure log.

#include <gtest/gtest.h>

#include "fds/failure_log.h"
#include "sim/scenario.h"

namespace cfds {
namespace {

TEST(FailureLog, RecordIsMonotoneAndKeepsEarliest) {
  FailureLog log;
  EXPECT_TRUE(log.record(NodeId{5}, {SimTime::seconds(1), 1, NodeId{0}}));
  EXPECT_FALSE(log.record(NodeId{5}, {SimTime::seconds(9), 9, NodeId{2}}));
  ASSERT_NE(log.entry(NodeId{5}), nullptr);
  EXPECT_EQ(log.entry(NodeId{5})->learned_at, SimTime::seconds(1));
  EXPECT_EQ(log.entry(NodeId{5})->reported_by, NodeId{0});
  EXPECT_EQ(log.size(), 1u);
}

TEST(FailureLog, KnownFailedIsSorted) {
  FailureLog log;
  log.record(NodeId{9}, {});
  log.record(NodeId{2}, {});
  log.record(NodeId{5}, {});
  EXPECT_EQ(log.known_failed(),
            (std::vector<NodeId>{NodeId{2}, NodeId{5}, NodeId{9}}));
  EXPECT_TRUE(log.knows(NodeId{2}));
  EXPECT_FALSE(log.knows(NodeId{3}));
  EXPECT_EQ(log.entry(NodeId{3}), nullptr);
}

TEST(Metrics, DetectionEventsCarryGroundTruth) {
  ScenarioConfig config;
  config.width = 500.0;
  config.height = 350.0;
  config.node_count = 250;
  config.loss_p = 0.0;
  config.seed = 3;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);
  scenario.run_epochs(2);

  ASSERT_FALSE(scenario.metrics().detections().empty());
  const auto first = scenario.metrics().first_detection(victim);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->suspect, victim);
  EXPECT_FALSE(first->suspect_was_alive);
  EXPECT_EQ(scenario.metrics().true_detections(), 1u);
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);

  // Detection latency: within one heartbeat interval of the crash.
  EXPECT_LE(first->when - config.heartbeat_interval,
            scenario.network().simulator().now());
}

TEST(Metrics, CoverageCountsOnlyEligibleObservers) {
  ScenarioConfig config;
  config.width = 400.0;
  config.height = 300.0;
  config.node_count = 150;
  config.loss_p = 0.0;
  config.seed = 3;
  Scenario scenario(config);
  scenario.setup();
  // Nobody crashed yet: coverage of an unknown failure is 0.
  EXPECT_EQ(knowledge_coverage(scenario.fds(), scenario.network(), NodeId{0}),
            0.0);
}

TEST(Metrics, TrafficTotalsAggregate) {
  ScenarioConfig config;
  config.width = 400.0;
  config.height = 300.0;
  config.node_count = 100;
  config.loss_p = 0.0;
  config.seed = 3;
  Scenario scenario(config);
  scenario.setup();
  const auto before = traffic_totals(scenario.network());
  scenario.run_epochs(1);
  const auto after = traffic_totals(scenario.network());
  // At least one heartbeat, one digest and one update per affiliated node.
  EXPECT_GT(after.frames, before.frames + 2 * 100);
  EXPECT_GT(after.bytes, before.bytes);
}

TEST(Metrics, ClearResetsEvents) {
  MetricsCollector collector;
  EXPECT_TRUE(collector.detections().empty());
  collector.clear();
  EXPECT_TRUE(collector.detections().empty());
  EXPECT_EQ(collector.true_detections(), 0u);
}

}  // namespace
}  // namespace cfds
