// Tests for the baselines: gossip-style FD and flat flooding.

#include <gtest/gtest.h>

#include "baseline/flooding.h"
#include "baseline/gossip_fd.h"
#include "net/topology.h"

namespace cfds {
namespace {

std::unique_ptr<Network> line_network(std::size_t n, double spacing,
                                      double loss_p = 0.0) {
  NetworkConfig config;
  config.seed = 5;
  auto network = std::make_unique<Network>(
      config, loss_p == 0.0
                  ? std::unique_ptr<LossModel>(std::make_unique<PerfectLinks>())
                  : std::make_unique<BernoulliLoss>(loss_p));
  for (std::size_t i = 0; i < n; ++i) {
    network->add_node({double(i) * spacing, 0.0});
  }
  return network;
}

TEST(GossipFd, CountersSpreadEpidemically) {
  // 6 nodes in a line, 80 m apart: only adjacent pairs hear each other, so
  // counters must travel hop by hop.
  auto network = line_network(6, 80.0);
  GossipConfig config;
  GossipService gossip(*network, config);
  gossip.run_rounds(10, SimTime::zero());
  // After 10 rounds everyone has a fresh entry for everyone.
  const SimTime now = network->simulator().now();
  for (GossipAgent* agent : gossip.agents()) {
    EXPECT_EQ(agent->table_size(), 6u);
    for (std::uint32_t other = 0; other < 6; ++other) {
      if (NodeId{other} == agent->id()) continue;
      EXPECT_TRUE(agent->considers_alive(NodeId{other}, now))
          << agent->id() << " about " << other;
    }
  }
}

TEST(GossipFd, CrashedNodeSuspectedAfterTimeout) {
  auto network = line_network(5, 50.0);
  GossipConfig config;
  config.gossip_interval = SimTime::seconds(1);
  config.fail_timeout = SimTime::seconds(5);
  GossipService gossip(*network, config);
  gossip.run_rounds(8, SimTime::zero());
  network->crash(NodeId{2});
  gossip.run_rounds(10, network->simulator().now());

  const SimTime now = network->simulator().now();
  for (GossipAgent* agent : gossip.agents()) {
    if (agent->id() == NodeId{2} ||
        !network->node(agent->id()).alive()) {
      continue;
    }
    const auto suspects = agent->suspected(now);
    EXPECT_EQ(suspects, std::vector<NodeId>{NodeId{2}}) << agent->id();
  }
}

TEST(GossipFd, NoFalseSuspicionsWithoutLoss) {
  auto network = line_network(5, 50.0);
  GossipConfig config;
  GossipService gossip(*network, config);
  gossip.run_rounds(20, SimTime::zero());
  const SimTime now = network->simulator().now();
  for (GossipAgent* agent : gossip.agents()) {
    EXPECT_TRUE(agent->suspected(now).empty());
  }
}

TEST(GossipFd, TablesGrowWithPopulation) {
  // The flat detector's frame size is O(network), unlike the FDS's
  // constant-size heartbeats — the scalability argument of Section 3.
  auto network = line_network(12, 10.0);
  GossipService gossip(*network, GossipConfig{});
  gossip.run_rounds(3, SimTime::zero());
  const auto& counters = network->node(NodeId{0}).radio().counters();
  // Last gossip frame carries ~12 entries * 12 bytes.
  EXPECT_GT(counters.bytes_sent, 12u * 12u);
}

TEST(Flooding, ReachesEveryoneAndCountsRebroadcasts) {
  auto network = line_network(8, 80.0);
  FloodService flood(*network);
  flood.agent_for(NodeId{0}).originate({NodeId{42}});
  network->simulator().run_to_completion();
  for (FloodAgent* agent : flood.agents()) {
    EXPECT_TRUE(agent->log().knows(NodeId{42})) << agent->id();
  }
  // Blind flooding: every node except the origin rebroadcasts once.
  EXPECT_EQ(flood.total_rebroadcasts(), 7u);
}

TEST(Flooding, DuplicateSuppression) {
  // Dense clique: everyone hears everyone, still exactly one rebroadcast
  // per node.
  auto network = line_network(6, 5.0);
  FloodService flood(*network);
  flood.agent_for(NodeId{0}).originate({NodeId{9}});
  network->simulator().run_to_completion();
  EXPECT_EQ(flood.total_rebroadcasts(), 5u);
}

TEST(Flooding, CrashedNodesDoNotRelay) {
  auto network = line_network(5, 80.0);
  FloodService flood(*network);
  network->crash(NodeId{2});  // cuts the line
  flood.agent_for(NodeId{0}).originate({NodeId{9}});
  network->simulator().run_to_completion();
  EXPECT_TRUE(flood.agent_for(NodeId{1}).log().knows(NodeId{9}));
  EXPECT_FALSE(flood.agent_for(NodeId{3}).log().knows(NodeId{9}));
  EXPECT_FALSE(flood.agent_for(NodeId{4}).log().knows(NodeId{9}));
}

TEST(Flooding, LossyFloodStillMostlyCovers) {
  NetworkConfig config;
  config.seed = 5;
  Network network(config, std::make_unique<BernoulliLoss>(0.2));
  Rng rng(8);
  network.add_nodes(uniform_rect(150, 500.0, 400.0, rng));
  FloodService flood(network);
  flood.agent_for(NodeId{0}).originate({NodeId{99}});
  network.simulator().run_to_completion();
  std::size_t covered = 0;
  for (FloodAgent* agent : flood.agents()) {
    if (agent->log().knows(NodeId{99})) ++covered;
  }
  EXPECT_GT(covered, 120u);  // dense flooding shrugs off 20% loss
}

}  // namespace
}  // namespace cfds
