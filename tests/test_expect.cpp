// Death tests for precondition checking: a corrupted simulation must crash
// loudly, not proceed quietly.

#include <gtest/gtest.h>

#include "common/expect.h"
#include "event/simulator.h"
#include "fds/agent.h"
#include "net/network.h"
#include "radio/loss_model.h"

namespace cfds {
namespace {

TEST(ExpectDeath, MacroAbortsWithDiagnostic) {
  EXPECT_DEATH(CFDS_EXPECT(false, "intentional"), "intentional");
  CFDS_EXPECT(true, "never fires");  // the passing path is silent
}

TEST(ExpectDeath, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(5), [] {});
  sim.run_to_completion();
  EXPECT_DEATH(sim.schedule_at(SimTime::seconds(1), [] {}),
               "cannot schedule events in the past");
}

TEST(ExpectDeath, CalendarInsertBeyondHorizonAborts) {
  // The horizon invariant is load-bearing: an entry past the horizon would
  // wrap the wheel and fire a lap early, silently corrupting event order.
  // The wheel must abort loudly instead (the kernel routes such events to
  // its overflow heap and never trips this).
  CalendarQueue queue;
  EventEntry entry{CalendarQueue::horizon() + SimTime::micros(1), 0, 0, 0};
  EXPECT_DEATH(queue.insert(entry, SimTime::zero()),
               "beyond the bounded horizon");
  entry.when = CalendarQueue::horizon();  // exactly at the horizon is fine
  queue.insert(entry, SimTime::zero());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ExpectDeath, CalendarInsertInThePastAborts) {
  CalendarQueue queue;
  const EventEntry entry{SimTime::millis(1), 0, 0, 0};
  EXPECT_DEATH(queue.insert(entry, SimTime::millis(2)),
               "calendar insert in the past");
}

TEST(ExpectDeath, InvalidLossProbabilityAborts) {
  EXPECT_DEATH(BernoulliLoss(-0.1), "loss probability");
  EXPECT_DEATH(BernoulliLoss(1.5), "loss probability");
}

TEST(ExpectDeath, UnknownNodeLookupAborts) {
  NetworkConfig config;
  Network network(config, std::make_unique<PerfectLinks>());
  network.add_node({0, 0});
  EXPECT_DEATH((void)network.node(NodeId{42}), "unknown node id");
}

TEST(ExpectDeath, TooShortHeartbeatIntervalAborts) {
  NetworkConfig net_config;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({0, 0});
  std::vector<MembershipView*> views;
  MembershipView view{NodeId{0}};
  views.push_back(&view);
  FdsConfig fds_config;
  fds_config.heartbeat_interval = SimTime::millis(100);  // == Thop
  EXPECT_DEATH(FdsService(network, views, fds_config),
               "heartbeat interval");
}

}  // namespace
}  // namespace cfds
