// Death tests for precondition checking: a corrupted simulation must crash
// loudly, not proceed quietly.

#include <gtest/gtest.h>

#include "common/expect.h"
#include "event/simulator.h"
#include "fds/agent.h"
#include "net/network.h"
#include "radio/loss_model.h"

namespace cfds {
namespace {

TEST(ExpectDeath, MacroAbortsWithDiagnostic) {
  EXPECT_DEATH(CFDS_EXPECT(false, "intentional"), "intentional");
  CFDS_EXPECT(true, "never fires");  // the passing path is silent
}

TEST(ExpectDeath, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(5), [] {});
  sim.run_to_completion();
  EXPECT_DEATH(sim.schedule_at(SimTime::seconds(1), [] {}),
               "cannot schedule events in the past");
}

TEST(ExpectDeath, CalendarInsertBeyondHorizonAborts) {
  // The horizon invariant is load-bearing: an entry past the horizon would
  // wrap the wheel and fire a lap early, silently corrupting event order.
  // The wheel must abort loudly instead (the kernel routes such events to
  // its overflow heap and never trips this).
  CalendarQueue queue;
  EventEntry entry{CalendarQueue::horizon() + SimTime::micros(1), 0, 0, 0};
  EXPECT_DEATH(queue.insert(entry, SimTime::zero()),
               "beyond the bounded horizon");
  entry.when = CalendarQueue::horizon();  // exactly at the horizon is fine
  queue.insert(entry, SimTime::zero());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ExpectDeath, CalendarInsertInThePastAborts) {
  CalendarQueue queue;
  const EventEntry entry{SimTime::millis(1), 0, 0, 0};
  EXPECT_DEATH(queue.insert(entry, SimTime::millis(2)),
               "calendar insert in the past");
}

TEST(ExpectDeath, InvalidLossProbabilityAborts) {
  EXPECT_DEATH(BernoulliLoss(-0.1), "loss probability");
  EXPECT_DEATH(BernoulliLoss(1.5), "loss probability");
}

TEST(ExpectDeath, UnknownNodeLookupAborts) {
  NetworkConfig config;
  Network network(config, std::make_unique<PerfectLinks>());
  network.add_node({0, 0});
  EXPECT_DEATH((void)network.node(NodeId{42}), "unknown node id");
}

TEST(ExpectDeath, TooShortHeartbeatIntervalAborts) {
  NetworkConfig net_config;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({0, 0});
  std::vector<MembershipView*> views;
  MembershipView view{NodeId{0}};
  views.push_back(&view);
  FdsConfig fds_config;
  fds_config.heartbeat_interval = SimTime::millis(100);  // == Thop
  EXPECT_DEATH(FdsService(network, views, fds_config),
               "phi must be at least 7");
}

// FdsConfig::validate is the single choke point every bench and tool entry
// point runs before touching the network; each documented constraint must
// abort, and a conforming config must pass silently.
TEST(ExpectDeath, FdsConfigValidateEnforcesEveryConstraint) {
  const SimTime t_hop = SimTime::millis(100);

  FdsConfig ok;
  ok.heartbeat_interval = SimTime::millis(800);
  ok.validate(t_hop);  // the conforming baseline is silent

  FdsConfig short_phi = ok;
  short_phi.heartbeat_interval = SimTime::millis(699);  // 7*Thop - 1ms
  EXPECT_DEATH(short_phi.validate(t_hop), "phi must be at least 7");
  short_phi.heartbeat_interval = SimTime::millis(700);  // exactly 7*Thop
  short_phi.validate(t_hop);

  EXPECT_DEATH(ok.validate(SimTime::zero()), "Thop must be positive");

  FdsConfig wild_skew = ok;
  wild_skew.max_clock_skew = SimTime::millis(401);  // > phi/2
  EXPECT_DEATH(wild_skew.validate(t_hop), "max_clock_skew");
  wild_skew.max_clock_skew = SimTime::millis(400);  // exactly phi/2
  wild_skew.validate(t_hop);

  FdsConfig zero_threshold = ok;
  zero_threshold.adaptive_enabled = true;
  zero_threshold.accrual_threshold_milli = 0;
  EXPECT_DEATH(zero_threshold.validate(t_hop), "accrual threshold");

  FdsConfig orphan_checkpoint = ok;
  orphan_checkpoint.checkpoint_enabled = true;  // without recovery_enabled
  EXPECT_DEATH(orphan_checkpoint.validate(t_hop), "requires recovery_enabled");

  FdsConfig zero_interval = ok;
  zero_interval.checkpoint_enabled = true;
  zero_interval.recovery_enabled = true;
  zero_interval.checkpoint_interval_epochs = 0;
  EXPECT_DEATH(zero_interval.validate(t_hop), "positive interval");

  zero_interval.checkpoint_interval_epochs = 2;
  zero_interval.validate(t_hop);  // checkpoint + recovery together is fine
}

}  // namespace
}  // namespace cfds
