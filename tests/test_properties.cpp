// Property-based sweeps over loss probabilities and seeds: the invariants
// DESIGN.md section 6 calls out, checked on the full stack.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/scenario.h"

namespace cfds {
namespace {

class LossSeedSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {
 protected:
  [[nodiscard]] double loss() const { return std::get<0>(GetParam()); }
  [[nodiscard]] std::uint64_t seed() const { return std::get<1>(GetParam()); }

  [[nodiscard]] ScenarioConfig config() const {
    ScenarioConfig c;
    c.width = 500.0;
    c.height = 350.0;
    c.node_count = 220;
    c.loss_p = loss();
    c.seed = seed();
    return c;
  }
};

// Soundness: a crashed member generates no frames under fail-stop, so no
// evidence of life can exist — its CH must flag it in the very next
// execution REGARDLESS of the loss probability.
TEST_P(LossSeedSweep, CrashedMemberAlwaysDetectedNextEpoch) {
  Scenario scenario(config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  ASSERT_TRUE(victim.is_valid());
  scenario.network().crash(victim);
  scenario.run_epochs(1);

  const auto first = scenario.metrics().first_detection(victim);
  ASSERT_TRUE(first.has_value()) << "p=" << loss() << " seed=" << seed();
  EXPECT_FALSE(first->suspect_was_alive);
}

// Failure logs are monotone: knowledge only grows.
TEST_P(LossSeedSweep, FailureKnowledgeIsMonotone) {
  Scenario scenario(config());
  scenario.setup();
  scenario.run_epochs(1);
  std::vector<std::size_t> before;
  for (FdsAgent* agent : scenario.fds().agents()) {
    before.push_back(agent->log().size());
  }
  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) victim = view->self();
  }
  scenario.network().crash(victim);
  scenario.run_epochs(3);
  std::size_t i = 0;
  for (FdsAgent* agent : scenario.fds().agents()) {
    EXPECT_GE(agent->log().size(), before[i++]);
  }
}

// Views never expect a *crashed* node the owner knows to be failed. (A
// falsely detected node that is still alive legitimately reappears: it
// re-subscribes unmarked and the CH re-admits it, feature F5.)
TEST_P(LossSeedSweep, ViewsNeverExpectKnownFailedNodes) {
  Scenario scenario(config());
  scenario.setup();
  scenario.run_epochs(1);
  std::vector<NodeId> victims;
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victims.push_back(view->self());
      if (victims.size() == 3) break;
    }
  }
  for (NodeId v : victims) scenario.network().crash(v);
  scenario.run_epochs(3);

  for (FdsAgent* agent : scenario.fds().agents()) {
    if (!agent->view().affiliated()) continue;
    for (NodeId failed : agent->log().known_failed()) {
      if (scenario.network().node(failed).alive()) continue;  // re-admitted
      EXPECT_FALSE(agent->view().cluster()->is_member(failed))
          << "agent " << agent->id() << " still expects " << failed;
    }
  }
}

// Radio energy is strictly consumed, never regained.
TEST_P(LossSeedSweep, EnergyIsMonotonicallyConsumed) {
  Scenario scenario(config());
  scenario.setup();
  scenario.run_epochs(1);
  std::vector<double> before;
  for (const Node* node : scenario.network().nodes()) {
    before.push_back(node->remaining_energy_uj());
  }
  scenario.run_epochs(2);
  std::size_t i = 0;
  for (const Node* node : scenario.network().nodes()) {
    EXPECT_LE(node->remaining_energy_uj(), before[i++]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossSeedSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.5),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{42},
                                         std::uint64_t{1337})));

// Bit-level reproducibility: the same configuration replays identically.
TEST(Determinism, IdenticalSeedsProduceIdenticalTraces) {
  auto run_once = [] {
    ScenarioConfig config;
    config.width = 500.0;
    config.height = 350.0;
    config.node_count = 200;
    config.loss_p = 0.25;
    config.seed = 77;
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(1);
    NodeId victim = NodeId::invalid();
    for (MembershipView* view : scenario.views()) {
      if (view->role() == Role::kOrdinaryMember) {
        victim = view->self();
        break;
      }
    }
    scenario.network().crash(victim);
    scenario.run_epochs(3);
    std::ostringstream trace;
    for (const DetectionEvent& e : scenario.metrics().detections()) {
      trace << e.decider << ':' << e.suspect << ':' << e.epoch << ':'
            << e.when << ';';
    }
    trace << '|' << traffic_totals(scenario.network()).frames;
    return trace.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto frames_for = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.width = 500.0;
    config.height = 350.0;
    config.node_count = 200;
    config.loss_p = 0.25;
    config.seed = seed;
    Scenario scenario(config);
    scenario.setup();
    scenario.run_epochs(2);
    return traffic_totals(scenario.network()).frames;
  };
  EXPECT_NE(frames_for(1), frames_for(2));
}

}  // namespace
}  // namespace cfds
