// Tests for the aggregation layer and its FDS piggybacking (Section 6).

#include <gtest/gtest.h>

#include <cmath>

#include "aggregation/service.h"
#include "cluster/directory.h"
#include "net/topology.h"
#include "sim/metrics.h"

namespace cfds {
namespace {

TEST(Aggregate, MonoidLaws) {
  Aggregate a;
  a.add(1.0);
  a.add(5.0);
  Aggregate b;
  b.add(3.0);

  Aggregate ab = a;
  ab.merge(b);
  Aggregate ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);  // commutative

  Aggregate identity;
  Aggregate a_id = a;
  a_id.merge(identity);
  EXPECT_EQ(a_id, a);  // identity

  EXPECT_EQ(ab.count, 3u);
  EXPECT_DOUBLE_EQ(ab.sum, 9.0);
  EXPECT_DOUBLE_EQ(ab.average(), 3.0);
  EXPECT_DOUBLE_EQ(ab.min, 1.0);
  EXPECT_DOUBLE_EQ(ab.max, 5.0);
}

TEST(Aggregate, EmptyBehaviour) {
  Aggregate empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.average(), 0.0);
}

/// Multi-cluster deployment with both services wired for message sharing.
struct AggDeployment {
  explicit AggDeployment(bool share_heartbeats, double loss_p = 0.0,
                         std::size_t n = 220) {
    NetworkConfig net_config;
    net_config.seed = 29;
    network = std::make_unique<Network>(
        net_config, loss_p == 0.0
                        ? std::unique_ptr<LossModel>(new PerfectLinks())
                        : std::unique_ptr<LossModel>(
                              new BernoulliLoss(loss_p)));
    Rng placement(29);
    positions = uniform_rect(n, 500.0, 350.0, placement);
    network->add_nodes(positions);
    const auto directory = ClusterDirectory::build(positions, 100.0);
    for (std::uint32_t i = 0; i < n; ++i) {
      views.push_back(std::make_unique<MembershipView>(NodeId{i}));
      ptrs.push_back(views.back().get());
    }
    directory.install(*network, ptrs);

    FdsConfig fds_config;
    fds_config.heartbeat_interval = SimTime::seconds(2);
    fds_config.external_heartbeats = share_heartbeats;
    fds = std::make_unique<FdsService>(*network, ptrs, fds_config);
    // Reading = NID value, so global aggregates are exactly checkable.
    aggregation = std::make_unique<AggregationService>(
        *network, *fds, ptrs,
        [](NodeId node, std::uint64_t) { return double(node.value()); });
  }

  std::unique_ptr<Network> network;
  std::vector<Vec2> positions;
  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  std::unique_ptr<FdsService> fds;
  std::unique_ptr<AggregationService> aggregation;
};

TEST(Aggregation, ClusterAggregatesAreExactWithoutLoss) {
  AggDeployment d(/*share_heartbeats=*/true);
  d.aggregation->run_epochs(1, SimTime::zero());
  // Each CH's own-cluster aggregate covers its full population exactly.
  for (AggregationAgent* agent : d.aggregation->agents()) {
    const MembershipView& view = *d.ptrs[agent->id().value()];
    if (!view.is_clusterhead()) continue;
    const auto aggregates = agent->aggregates_for(0);
    ASSERT_FALSE(aggregates.empty());
    // Find this cluster's own entry by reconstructing it.
    Aggregate expected;
    expected.add(double(view.self().value()));
    for (NodeId m : view.cluster()->members) expected.add(double(m.value()));
    bool found = false;
    for (const Aggregate& a : aggregates) {
      if (a == expected) found = true;
    }
    EXPECT_TRUE(found) << "CH " << agent->id();
  }
}

TEST(Aggregation, GlobalViewFloodsToEveryClusterhead) {
  AggDeployment d(/*share_heartbeats=*/true);
  d.aggregation->run_epochs(1, SimTime::zero());
  // Ground truth: every affiliated node counted once.
  std::size_t affiliated = 0;
  for (auto& view : d.views) {
    if (view->affiliated()) ++affiliated;
  }
  std::size_t clusterheads = 0;
  for (AggregationAgent* agent : d.aggregation->agents()) {
    if (!d.ptrs[agent->id().value()]->is_clusterhead()) continue;
    ++clusterheads;
    const Aggregate global = agent->global_view(0);
    EXPECT_EQ(global.count, affiliated) << "CH " << agent->id();
    EXPECT_DOUBLE_EQ(global.min, 0.0);
  }
  EXPECT_GT(clusterheads, 2u);
}

TEST(Aggregation, MeasurementsDoubleAsHeartbeats) {
  // With external_heartbeats, no bare heartbeat is ever sent, yet the FDS
  // neither false-detects anyone nor misses a real crash.
  AggDeployment d(/*share_heartbeats=*/true);
  MetricsCollector metrics;
  metrics.attach(*d.fds, *d.network);
  d.aggregation->run_epochs(2, SimTime::zero());
  EXPECT_TRUE(metrics.detections().empty());

  NodeId victim = NodeId::invalid();
  for (auto& view : d.views) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  d.network->crash(victim);
  d.aggregation->schedule_epoch(2, SimTime::seconds(4));
  d.network->simulator().run_until(SimTime::seconds(6));
  const auto first = metrics.first_detection(victim);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->suspect_was_alive);
}

TEST(Aggregation, SharingSavesFrames) {
  AggDeployment shared(/*share_heartbeats=*/true);
  AggDeployment separate(/*share_heartbeats=*/false);
  shared.aggregation->run_epochs(2, SimTime::zero());
  separate.aggregation->run_epochs(2, SimTime::zero());
  const auto shared_frames = traffic_totals(*shared.network).frames;
  const auto separate_frames = traffic_totals(*separate.network).frames;
  // Separate mode pays one extra bare heartbeat per node per epoch.
  EXPECT_EQ(separate_frames, shared_frames + 2 * 220);
}

TEST(Aggregation, CrashedNodesDropOutOfTheAggregate) {
  AggDeployment d(/*share_heartbeats=*/true);
  NodeId victim = NodeId::invalid();
  for (auto& view : d.views) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  d.network->crash(victim);
  d.aggregation->run_epochs(1, SimTime::zero());
  std::size_t affiliated_alive = 0;
  for (auto& view : d.views) {
    if (view->affiliated() && d.network->node(view->self()).alive()) {
      ++affiliated_alive;
    }
  }
  for (AggregationAgent* agent : d.aggregation->agents()) {
    if (!d.ptrs[agent->id().value()]->is_clusterhead()) continue;
    EXPECT_EQ(agent->global_view(0).count, affiliated_alive);
    break;
  }
}

TEST(Aggregation, LossyChannelYieldsPartialButSaneAggregates) {
  AggDeployment d(/*share_heartbeats=*/true, /*loss_p=*/0.3);
  d.aggregation->run_epochs(1, SimTime::zero());
  for (AggregationAgent* agent : d.aggregation->agents()) {
    if (!d.ptrs[agent->id().value()]->is_clusterhead()) continue;
    const Aggregate global = agent->global_view(0);
    EXPECT_GT(global.count, 0u);
    EXPECT_LE(global.count, 220u);
    EXPECT_GE(global.min, 0.0);
    EXPECT_LT(global.max, 220.0);
  }
}

}  // namespace
}  // namespace cfds
