// Steady-state FDS epochs must be allocation-free: the megascale path
// (bench_megascale) runs millions of epochs-worth of events in one process,
// and any per-epoch heap churn both dominates the profile and fragments the
// heap long before 10^6 nodes. This binary proves the property the code
// comments promise — warm flat containers, pooled send payloads, slab-backed
// events and transmissions — by counting every ::operator new across two
// full executions of a 10^4-node world and demanding zero.
//
// Scope: the simulator's hard-boundary path under the default config (no
// epoch-skew tolerance, no adaptive accrual, no checkpoints, no forwarder,
// no hooks), a clean channel, and no failures — exactly the state an idle
// deployed world sits in. The skew path's prune_evidence keeps a local
// scratch vector and is exercised by service-mode tests instead.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "cluster/directory.h"
#include "cluster/membership.h"
#include "fds/agent.h"
#include "net/network.h"
#include "net/topology.h"

// Global allocation counter (same pattern as test_simulator.cpp): the
// counter only ticks between begin/end so setup and teardown are unaffected.
namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// The counting operator new allocates with std::malloc, so the matching
// operator delete releases with std::free. GCC's caller-side heuristic only
// sees "delete expression ends in free()" and flags every inlined delete
// site; the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#ifdef CFDS_ALLOC_TRACE
#include <execinfo.h>
namespace {
constexpr int kMaxTraces = 20000;
void* g_traces[kMaxTraces][8];
int g_trace_sizes[kMaxTraces];
std::size_t g_trace_bytes[kMaxTraces];
std::atomic<int> g_trace_count{0};
}  // namespace
#endif

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
#ifdef CFDS_ALLOC_TRACE
    g_counting.store(false, std::memory_order_relaxed);
    const int slot = g_trace_count.fetch_add(1, std::memory_order_relaxed);
    if (slot < kMaxTraces) {
      g_trace_sizes[slot] = backtrace(g_traces[slot], 8);
      g_trace_bytes[slot] = size;
    }
    g_counting.store(true, std::memory_order_relaxed);
#endif
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace cfds {
namespace {

TEST(SteadyStateAlloc, EpochsAtTenThousandNodesAreAllocationFree) {
  constexpr std::size_t kNodes = 10'000;
  // ~50 nodes per transmission disk, the paper's density regime
  // (500 nodes <-> 700 x 450 at range 100).
  const double width = 700.0 * 4.4721;
  const double height = 450.0 * 4.4721;

  NetworkConfig net_config;
  net_config.seed = 7;
  Network network(net_config, std::make_unique<BernoulliLoss>(0.0));
  Rng placement = network.fork_rng();
  const auto positions = uniform_rect(kNodes, width, height, placement);
  network.add_nodes(positions);

  const auto directory =
      ClusterDirectory::build(positions, net_config.channel.range);
  std::vector<std::unique_ptr<MembershipView>> owned_views;
  std::vector<MembershipView*> views;
  for (std::size_t i = 0; i < kNodes; ++i) {
    owned_views.push_back(
        std::make_unique<MembershipView>(NodeId{std::uint32_t(i)}));
    views.push_back(owned_views.back().get());
  }
  directory.install(network, views);

  FdsConfig config;  // defaults: the simulator hard-boundary path
  config.heartbeat_interval = SimTime::seconds(2);
  FdsService fds(network, views, config);

  // Pre-size the event queue. Epoch times are not commensurate with the
  // calendar wheel's period, so each epoch's events land in different
  // buckets; without an explicit reserve every bucket's vector would grow
  // the first time its turn comes — amortized zero over a long run, but
  // visible in a two-epoch window. reserve() spreads capacity across the
  // wheel (the megascale bench does the same).
  network.simulator().reserve(std::size_t{1} << 19);

  const SimTime phi = config.heartbeat_interval;
  std::uint64_t epoch = 0;
  SimTime next = phi;
  auto run_epochs = [&](std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) {
      fds.schedule_epoch(epoch++, next);
      next += phi;
    }
    network.simulator().run_until(next);
  };

  // Warm-up: capacity growth everywhere (event slab, calendar queue,
  // transmission slab, evidence tables, payload pools) and the first-epoch
  // subscription round (every node starts unmarked, so epoch 0 carries
  // admissions and membership snapshots). Several epochs, not one: pooled
  // buffers pair with different demand each epoch (calendar spare vectors
  // with buckets, transmissions with senders, digest slots with digest
  // sizes), so the capacity population takes a few epochs to cover the
  // worst per-epoch pairing.
  run_epochs(6);

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  run_epochs(2);
  g_counting.store(false, std::memory_order_relaxed);

#ifdef CFDS_ALLOC_TRACE
  {
    // Aggregate by (frame2, frame3) call-site pair; print each unique site
    // once with its hit count, total bytes, and one full stack.
    const int n = std::min(kMaxTraces, g_trace_count.load());
    std::vector<int> order;
    for (int t = 0; t < n; ++t) {
      bool fresh = true;
      for (int u : order) {
        if (g_traces[t][2] == g_traces[u][2] &&
            g_traces[t][3] == g_traces[u][3]) {
          fresh = false;
          break;
        }
      }
      if (fresh) order.push_back(t);
    }
    for (int u : order) {
      int hits = 0;
      std::size_t bytes = 0;
      for (int t = 0; t < n; ++t) {
        if (g_traces[t][2] == g_traces[u][2] &&
            g_traces[t][3] == g_traces[u][3]) {
          hits++;
          bytes += g_trace_bytes[t];
        }
      }
      char** syms = backtrace_symbols(g_traces[u], g_trace_sizes[u]);
      std::printf("=== site: %d hits, %zu bytes ===\n", hits, bytes);
      std::printf("  sizes:");
      for (int t = 0; t < n; ++t) {
        if (g_traces[t][2] == g_traces[u][2] &&
            g_traces[t][3] == g_traces[u][3]) {
          std::printf(" %zu", g_trace_bytes[t]);
        }
      }
      std::printf("\n");
      for (int f = 2; f < g_trace_sizes[u]; ++f)
        std::printf("  %s\n", syms[f]);
      std::free(syms);
    }
  }
#endif
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u)
      << "steady-state epochs must reuse warm buffers (see the pooled-send "
         "and slot-table comments in fds/agent.h and fds/detector.h)";

  // The property must not come from a degenerate world: the clusters formed
  // and every agent stayed in the sweep.
  EXPECT_GT(directory.clusters().size(), 100u);
  EXPECT_EQ(fds.active_agents(), kNodes);
}

}  // namespace
}  // namespace cfds
