// Tests for the full-stack single-cluster experiment driver itself.

#include <gtest/gtest.h>

#include "analysis/figures.h"
#include "sim/single_cluster.h"

namespace cfds {
namespace {

SingleClusterConfig base(double p) {
  SingleClusterConfig config;
  config.n = 16;
  config.p = p;
  config.seed = 97;
  config.num_deputies = 0;
  return config;
}

TEST(SingleCluster, FalseDetectionGrowsWithLoss) {
  SingleClusterExperiment low(base(0.3));
  SingleClusterExperiment high(base(0.6));
  const double p_low = low.run_false_detection(4000).estimate();
  const double p_high = high.run_false_detection(4000).estimate();
  EXPECT_LT(p_low, p_high);
}

TEST(SingleCluster, PinnedEdgeNodeIsTheWorstCase) {
  // The circumference position maximizes false detection (that is why the
  // paper's measure is an upper bound): unpinned (uniform) placement must
  // measure lower.
  SingleClusterConfig pinned = base(0.5);
  SingleClusterConfig uniform = base(0.5);
  uniform.pin_edge_node = false;
  SingleClusterExperiment pinned_exp(pinned);
  SingleClusterExperiment uniform_exp(uniform);
  const auto pinned_est = pinned_exp.run_false_detection(12000);
  const auto uniform_est = uniform_exp.run_false_detection(12000);
  EXPECT_GT(pinned_est.estimate(),
            uniform_est.estimate() - uniform_est.ci99());
}

TEST(SingleCluster, TrialsAreIndependentAcrossReuse) {
  // Reusing one experiment for successive batches must keep estimating the
  // same quantity (state is reinstalled between trials).
  SingleClusterExperiment experiment(base(0.5));
  const auto first = experiment.run_false_detection(6000);
  const auto second = experiment.run_false_detection(6000);
  EXPECT_NEAR(first.estimate(), second.estimate(),
              first.ci99() + second.ci99());
}

TEST(SingleCluster, NoDeputiesMeansNoTakeovers) {
  SingleClusterExperiment experiment(base(0.6));
  const auto takeovers = experiment.run_false_detection_on_ch(2000);
  EXPECT_EQ(takeovers.successes(), 0);  // nobody is authorized to decide
}

TEST(SingleCluster, CentralDeputySeesLowerFalseTakeoverRate) {
  // Figure 6's geometry assumption: a central DCH overhears every digest,
  // an edge DCH only a subset — the central one must false-detect less.
  SingleClusterConfig central = base(0.6);
  central.num_deputies = 1;
  central.pin_deputy_center = true;
  central.pin_edge_node = false;
  SingleClusterConfig off_center = central;
  off_center.pin_deputy_center = false;
  SingleClusterExperiment central_exp(central);
  SingleClusterExperiment off_exp(off_center);
  const auto central_est = central_exp.run_false_detection_on_ch(20000);
  const auto off_est = off_exp.run_false_detection_on_ch(20000);
  EXPECT_LE(central_est.estimate(), off_est.estimate() + off_est.ci99());
}

TEST(SingleCluster, IncompletenessBoundedByAnalytic) {
  SingleClusterExperiment experiment(base(0.5));
  const auto estimate = experiment.run_incompleteness(8000);
  const double bound = analysis::incompleteness_upper_bound(0.5, 16);
  EXPECT_LE(estimate.estimate(), bound + estimate.ci99());
}

}  // namespace
}  // namespace cfds
