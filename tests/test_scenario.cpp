// Tests for the Scenario harness itself: setup paths, replenishment,
// crash scheduling, epoch accounting.

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace cfds {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig config;
  config.width = 400.0;
  config.height = 300.0;
  config.node_count = 120;
  config.loss_p = 0.0;
  config.seed = 11;
  return config;
}

TEST(Scenario, SetupInstallsViewsForEveryNode) {
  Scenario scenario(small_config());
  scenario.setup();
  const auto views = scenario.views();
  EXPECT_EQ(views.size(), 120u);
  for (MembershipView* view : views) {
    ASSERT_NE(view, nullptr);
  }
  EXPECT_GT(scenario.cluster_count(), 0u);
  EXPECT_EQ(scenario.epochs_run(), 0u);
}

TEST(Scenario, EpochCounterAdvances) {
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(3);
  EXPECT_EQ(scenario.epochs_run(), 3u);
  scenario.run_epochs(2);
  EXPECT_EQ(scenario.epochs_run(), 5u);
}

TEST(Scenario, ScheduledCrashHappensMidRun) {
  Scenario scenario(small_config());
  scenario.setup();
  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  // Crash between epochs 2 and 3.
  scenario.schedule_crash(
      victim, scenario.config().heartbeat_interval * 2 +
                  scenario.config().heartbeat_interval);
  scenario.run_epochs(5);
  EXPECT_FALSE(scenario.network().node(victim).alive());
  ASSERT_TRUE(scenario.metrics().first_detection(victim).has_value());
}

TEST(Scenario, ReplenishedNodesJoinViaSubscription) {
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);
  const auto added = scenario.replenish(15);
  EXPECT_EQ(added.size(), 15u);
  EXPECT_EQ(scenario.network().node_count(), 135u);
  scenario.run_epochs(2);

  std::size_t affiliated = 0;
  const auto views = scenario.views();
  for (NodeId id : added) {
    ASSERT_LT(id.value(), views.size());
    if (views[id.value()]->affiliated()) {
      ++affiliated;
      EXPECT_EQ(views[id.value()]->role(), Role::kOrdinaryMember);
      EXPECT_TRUE(scenario.network().node(id).marked());
    }
  }
  // Most land within some clusterhead's range at this density.
  EXPECT_GT(affiliated, 10u);
}

TEST(Scenario, ReplenishedNodesAreMonitoredOnceAdmitted) {
  Scenario scenario(small_config());
  scenario.setup();
  scenario.run_epochs(1);
  const auto added = scenario.replenish(10);
  scenario.run_epochs(2);

  NodeId admitted = NodeId::invalid();
  const auto views = scenario.views();
  for (NodeId id : added) {
    if (views[id.value()]->affiliated()) {
      admitted = id;
      break;
    }
  }
  ASSERT_TRUE(admitted.is_valid());
  scenario.network().crash(admitted);
  scenario.run_epochs(1);
  const auto first = scenario.metrics().first_detection(admitted);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->suspect_was_alive);
}

TEST(Scenario, ViewsComeFromFormationAgentsInDistributedMode) {
  ScenarioConfig config = small_config();
  config.node_count = 150;
  config.distributed_formation = true;
  Scenario scenario(config);
  const SimTime settled = scenario.setup();
  EXPECT_GT(settled, SimTime::zero());  // formation consumed simulated time
  EXPECT_GT(scenario.affiliation_rate(), 0.9);
  scenario.run_epochs(1);
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);
}

TEST(Scenario, ForwarderCanBeDisabled) {
  ScenarioConfig config = small_config();
  config.enable_forwarder = false;
  Scenario scenario(config);
  scenario.setup();
  EXPECT_EQ(scenario.forwarder(), nullptr);
  scenario.run_epochs(1);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);
  scenario.run_epochs(3);
  // Local detection still works; knowledge stays confined to the cluster.
  ASSERT_TRUE(scenario.metrics().first_detection(victim).has_value());
  const double coverage =
      knowledge_coverage(scenario.fds(), scenario.network(), victim);
  EXPECT_LT(coverage, 1.0);
  EXPECT_GT(coverage, 0.0);
}

}  // namespace
}  // namespace cfds
