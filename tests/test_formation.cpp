// Tests for the distributed cluster-formation protocol, checked against the
// feature list F1-F5 and, under perfect links, against the centralized
// reference directory.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/directory.h"
#include "cluster/formation.h"
#include "net/graph.h"
#include "net/topology.h"

namespace cfds {
namespace {

struct Deployment {
  explicit Deployment(std::size_t n, double loss_p = 0.0,
                      std::uint64_t seed = 5) {
    NetworkConfig config;
    config.seed = seed;
    network = std::make_unique<Network>(
        config, loss_p == 0.0
                    ? std::unique_ptr<LossModel>(new PerfectLinks())
                    : std::unique_ptr<LossModel>(new BernoulliLoss(loss_p)));
    Rng rng(seed);
    positions = uniform_rect(n, 600.0, 400.0, rng);
    network->add_nodes(positions);
    formation = std::make_unique<FormationProtocol>(*network);
  }

  std::unique_ptr<Network> network;
  std::vector<Vec2> positions;
  std::unique_ptr<FormationProtocol> formation;
};

TEST(Formation, AllNonIsolatedNodesAffiliate) {
  Deployment d(200);
  d.formation->run(4);
  const UnitDiskGraph graph(d.positions, 100.0);
  for (FormationAgent* agent : d.formation->agents()) {
    const bool isolated = graph.degree(agent->id().value()) == 0;
    EXPECT_EQ(agent->view().affiliated(), !isolated)
        << "node " << agent->id();
  }
}

TEST(Formation, MembersAreOneHopFromTheirClusterhead) {
  Deployment d(200);
  d.formation->run(4);
  for (FormationAgent* agent : d.formation->agents()) {
    if (!agent->view().affiliated()) continue;
    const NodeId ch = agent->view().cluster()->clusterhead;
    EXPECT_TRUE(within_range(d.positions[agent->id().value()],
                             d.positions[ch.value()], 100.0));
  }
}

TEST(Formation, MatchesCentralizedReferenceOnPerfectLinks) {
  Deployment d(150);
  d.formation->run(4);
  const auto reference = ClusterDirectory::build(d.positions, 100.0);
  for (FormationAgent* agent : d.formation->agents()) {
    const ClusterView* expected = reference.cluster_of(agent->id());
    if (expected == nullptr) {
      EXPECT_FALSE(agent->view().affiliated());
      continue;
    }
    ASSERT_TRUE(agent->view().affiliated()) << "node " << agent->id();
    EXPECT_EQ(agent->view().cluster()->id, expected->id)
        << "node " << agent->id();
    EXPECT_EQ(agent->view().cluster()->clusterhead, expected->clusterhead);
  }
}

TEST(Formation, ClusterheadViewsAgreeWithMemberViews) {
  Deployment d(150);
  d.formation->run(4);
  // Every member's (cluster, CH) pair must match what that CH believes.
  std::map<ClusterId, NodeId> ch_by_cluster;
  for (FormationAgent* agent : d.formation->agents()) {
    if (agent->view().is_clusterhead()) {
      ch_by_cluster[agent->view().cluster()->id] = agent->id();
    }
  }
  for (FormationAgent* agent : d.formation->agents()) {
    if (!agent->view().affiliated()) continue;
    const auto it = ch_by_cluster.find(agent->view().cluster()->id);
    ASSERT_NE(it, ch_by_cluster.end());
    EXPECT_EQ(agent->view().cluster()->clusterhead, it->second);
  }
}

TEST(Formation, GatewayAffiliationIsUnique) {
  // Feature F3: every gateway is a member of exactly one cluster.
  Deployment d(250);
  d.formation->run(4);
  std::map<NodeId, std::set<ClusterId>> memberships;
  for (FormationAgent* agent : d.formation->agents()) {
    if (agent->view().affiliated()) {
      memberships[agent->id()].insert(agent->view().cluster()->id);
    }
  }
  for (const auto& [node, clusters] : memberships) {
    EXPECT_EQ(clusters.size(), 1u) << "node " << node;
  }
}

TEST(Formation, DenseFieldsYieldGatewayLinks) {
  Deployment d(400);
  d.formation->run(4);
  std::size_t links = 0;
  for (FormationAgent* agent : d.formation->agents()) {
    if (agent->view().is_clusterhead()) {
      links += agent->view().cluster()->links.size();
    }
  }
  EXPECT_GT(links, 0u);
}

TEST(Formation, GatewayLinksHaveRankedBackups) {
  // Feature F2: dense deployments should produce BGWs on at least some links.
  Deployment d(400);
  d.formation->run(4);
  std::size_t with_backups = 0;
  for (FormationAgent* agent : d.formation->agents()) {
    if (!agent->view().is_clusterhead()) continue;
    for (const GatewayLink& link : agent->view().cluster()->links) {
      EXPECT_TRUE(link.gateway.is_valid());
      EXPECT_LT(link.gateway, link.backups.empty() ? NodeId::invalid()
                                                   : link.backups.front());
      if (!link.backups.empty()) ++with_backups;
    }
  }
  EXPECT_GT(with_backups, 0u);
}

TEST(Formation, DeputiesAreDesignated) {
  Deployment d(300);
  d.formation->run(4);
  for (FormationAgent* agent : d.formation->agents()) {
    if (!agent->view().is_clusterhead()) continue;
    const ClusterView& c = *agent->view().cluster();
    if (c.members.size() >= 2) {
      EXPECT_GE(c.deputies.size(), 1u) << "cluster " << c.id;
    }
  }
}

TEST(Formation, ExtraIterationsAreDegenerate) {
  // Feature F4: once everyone is marked, further iterations change nothing
  // and cost only the shared heartbeat (probe) round.
  Deployment d(150);
  d.formation->run(4);
  std::map<NodeId, ClusterId> before;
  for (FormationAgent* agent : d.formation->agents()) {
    if (agent->view().affiliated()) {
      before[agent->id()] = agent->view().cluster()->id;
    }
  }
  const std::uint64_t frames_before =
      d.network->channel().stats().transmissions;
  d.formation->run(2, d.network->simulator().now());
  for (FormationAgent* agent : d.formation->agents()) {
    if (agent->view().affiliated()) {
      EXPECT_EQ(before.at(agent->id()), agent->view().cluster()->id);
    }
  }
  const std::uint64_t extra =
      d.network->channel().stats().transmissions - frames_before;
  EXPECT_EQ(extra, 2u * 150u);  // exactly the probe rounds
}

TEST(Formation, LateArrivalsJoinExistingClusters) {
  Deployment d(100);
  d.formation->run(3);
  // Drop a newcomer inside the field; feature F4's open end means the next
  // iterations of the same protocol admit it.
  Node& newcomer = d.network->add_node({300.0, 200.0});
  d.formation->adopt_new_nodes();
  d.formation->run(2, d.network->simulator().now());
  EXPECT_TRUE(d.formation->agent_for(newcomer.id()).view().affiliated());
}

TEST(Formation, SurvivesMessageLoss) {
  Deployment d(300, /*loss_p=*/0.2, /*seed=*/11);
  d.formation->run(6);
  std::size_t affiliated = 0;
  for (FormationAgent* agent : d.formation->agents()) {
    if (agent->view().affiliated()) ++affiliated;
  }
  // Loss delays admission but iteration retries recover nearly everyone.
  EXPECT_GT(double(affiliated), 0.95 * 300);
}

}  // namespace
}  // namespace cfds
