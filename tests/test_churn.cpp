// Churn storms: sustained simultaneous failure + replenishment load, under
// loss, for many executions. These are endurance/invariant tests — the
// paper's application regime is exactly this (Section 2.1: hosts fail over
// time and the field is replenished to preserve density).

#include <gtest/gtest.h>

#include <set>

#include "sim/scenario.h"

namespace cfds {
namespace {

class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, TwentyEpochsOfChurnKeepInvariants) {
  ScenarioConfig config;
  config.width = 500.0;
  config.height = 350.0;
  config.node_count = 250;
  config.loss_p = 0.15;
  config.seed = GetParam();
  Scenario scenario(config);
  scenario.setup();

  Rng chaos(GetParam() ^ 0xC0);
  std::set<NodeId> crashed;
  for (int epoch = 0; epoch < 20; ++epoch) {
    // Kill 0-2 members...
    const auto kills = chaos.below(3);
    for (std::uint64_t k = 0; k < kills; ++k) {
      std::vector<NodeId> candidates;
      for (MembershipView* view : scenario.views()) {
        if (view->role() == Role::kOrdinaryMember &&
            scenario.network().node(view->self()).alive()) {
          candidates.push_back(view->self());
        }
      }
      if (candidates.empty()) break;
      const NodeId victim = candidates[chaos.below(candidates.size())];
      scenario.network().crash(victim);
      crashed.insert(victim);
    }
    // ...and occasionally drop replacements.
    if (epoch % 5 == 4) scenario.replenish(5);
    scenario.run_epochs(1);
  }

  // Invariant 1: every crashed node was detected (soundness of the rule —
  // a fail-stop node can produce no evidence of life).
  for (NodeId victim : crashed) {
    EXPECT_TRUE(scenario.metrics().first_detection(victim).has_value())
        << "crashed node " << victim << " was never detected";
  }

  // Invariant 2: detections of crashed nodes dominate; false detections
  // stay a small fraction at p = 0.15.
  EXPECT_GE(scenario.metrics().true_detections(), crashed.size());
  EXPECT_LE(scenario.metrics().false_detections(),
            scenario.metrics().true_detections());

  // Invariant 3: no alive affiliated node's view names a crashed member.
  for (FdsAgent* agent : scenario.fds().agents()) {
    if (!scenario.network().node(agent->id()).alive()) continue;
    if (!agent->view().affiliated()) continue;
    for (NodeId victim : crashed) {
      if (agent->log().knows(victim)) {
        EXPECT_FALSE(agent->view().cluster()->is_member(victim))
            << agent->id() << " still expects crashed " << victim;
      }
    }
  }

  // Invariant 4: knowledge of early casualties has propagated broadly.
  if (!crashed.empty()) {
    EXPECT_GT(knowledge_coverage(scenario.fds(), scenario.network(),
                                 *crashed.begin()),
              0.9);
  }

  // Invariant 5: the population is still being served — most alive nodes
  // affiliated despite 20 epochs of churn.
  EXPECT_GT(scenario.affiliation_rate(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Values(2u, 77u, 4242u));

TEST(Churn, MassSimultaneousFailure) {
  // A quarter of the field dies at once (localized EMP-style event): the
  // service must detect all of it and keep running.
  ScenarioConfig config;
  config.width = 500.0;
  config.height = 350.0;
  config.node_count = 240;
  config.loss_p = 0.1;
  config.seed = 31;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  std::vector<NodeId> victims;
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember && victims.size() < 60) {
      victims.push_back(view->self());
    }
  }
  for (NodeId v : victims) scenario.network().crash(v);
  scenario.run_epochs(4);

  std::size_t detected = 0;
  for (NodeId v : victims) {
    if (scenario.metrics().first_detection(v)) ++detected;
  }
  EXPECT_EQ(detected, victims.size());
  EXPECT_GT(knowledge_coverage(scenario.fds(), scenario.network(),
                               victims.front()),
            0.9);
}

TEST(Churn, EveryClusterheadDies) {
  // Decapitation: all clusterheads crash simultaneously; deputies must take
  // over everywhere and the service must keep detecting.
  ScenarioConfig config;
  config.width = 450.0;
  config.height = 300.0;
  config.node_count = 220;
  config.loss_p = 0.0;
  config.seed = 53;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  std::vector<NodeId> heads;
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead()) heads.push_back(view->self());
  }
  ASSERT_GT(heads.size(), 2u);
  for (NodeId head : heads) scenario.network().crash(head);
  scenario.run_epochs(3);

  std::size_t taken_over = 0;
  for (NodeId head : heads) {
    const auto first = scenario.metrics().first_detection(head);
    if (first && first->by_deputy) ++taken_over;
  }
  EXPECT_EQ(taken_over, heads.size());

  // The decapitated clusters keep working: crash a member under new
  // management and expect detection.
  NodeId member = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember &&
        scenario.network().node(view->self()).alive()) {
      member = view->self();
      break;
    }
  }
  ASSERT_TRUE(member.is_valid());
  scenario.network().crash(member);
  scenario.run_epochs(2);
  EXPECT_TRUE(scenario.metrics().first_detection(member).has_value());
}

}  // namespace
}  // namespace cfds
