// Behavioural tests for inter-cluster failure-report forwarding
// (Section 4.3): implicit acknowledgements, CH retransmission, ranked BGW
// assistance, flood damping, and the explicit-ack strawman.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fds/agent.h"
#include "intercluster/forwarder.h"
#include "net/network.h"

namespace cfds {
namespace {

/// Drops the first `count` frames on one directed (sender, receiver) pair;
/// everything else is delivered. Lets tests force specific retransmissions.
class DropFirstK final : public LossModel {
 public:
  DropFirstK(NodeId sender, NodeId receiver, int count)
      : sender_(sender), receiver_(receiver), remaining_(count) {}

  bool lost(NodeId sender, Vec2, NodeId receiver, Vec2, Rng&) override {
    if (sender == sender_ && receiver == receiver_ && remaining_ > 0) {
      --remaining_;
      return true;
    }
    return false;
  }

 private:
  NodeId sender_;
  NodeId receiver_;
  int remaining_;
};

/// Permanently drops every frame on one directed pair.
class DropAlways final : public LossModel {
 public:
  DropAlways(NodeId sender, NodeId receiver)
      : sender_(sender), receiver_(receiver) {}
  bool lost(NodeId sender, Vec2, NodeId receiver, Vec2, Rng&) override {
    return sender == sender_ && receiver == receiver_;
  }

 private:
  NodeId sender_;
  NodeId receiver_;
};

/// Two clusters bridged by one GW and (optionally) BGWs.
///
/// Layout (range 100):
///   CH A = node 0 at (0,0); A-members 2,3 near it; victim 4 near it.
///   CH B = node 1 at (160,0); B-members 5,6 near it.
///   GW   = node 7 at (80,0), member of A, hears both CHs.
///   BGWs = nodes 8,9 at (80,±15), members of A.
struct TwoClusters {
  explicit TwoClusters(std::unique_ptr<LossModel> loss,
                       ForwarderConfig fwd_config = {},
                       std::size_t num_backups = 2) {
    NetworkConfig net_config;
    net_config.seed = 17;
    network = std::make_unique<Network>(net_config, std::move(loss));
    network->add_node({0.0, 0.0});     // 0: CH A
    network->add_node({160.0, 0.0});   // 1: CH B
    network->add_node({-30.0, 10.0});  // 2: A member (primary deputy of A)
    network->add_node({20.0, -25.0});  // 3: A member
    network->add_node({10.0, 30.0});   // 4: A member (the victim)
    network->add_node({175.0, 15.0});  // 5: B member (primary deputy of B),
                                       //    within the GW's range
    network->add_node({140.0, -15.0}); // 6: B member
    network->add_node({80.0, 0.0});    // 7: GW
    network->add_node({80.0, 15.0});   // 8: BGW rank 1
    network->add_node({80.0, -15.0});  // 9: BGW rank 2

    ClusterView a;
    a.id = ClusterId{0};
    a.clusterhead = NodeId{0};
    a.members = {NodeId{2}, NodeId{3}, NodeId{4},
                 NodeId{7}, NodeId{8}, NodeId{9}};
    a.deputies = {NodeId{2}};
    ClusterView b;
    b.id = ClusterId{1};
    b.clusterhead = NodeId{1};
    b.members = {NodeId{5}, NodeId{6}};
    b.deputies = {NodeId{5}};

    GatewayLink ab;
    ab.neighbor_cluster = b.id;
    ab.neighbor_clusterhead = b.clusterhead;
    ab.gateway = NodeId{7};
    if (num_backups >= 1) ab.backups.push_back(NodeId{8});
    if (num_backups >= 2) ab.backups.push_back(NodeId{9});
    a.links.push_back(ab);
    GatewayLink ba = ab;
    ba.neighbor_cluster = a.id;
    ba.neighbor_clusterhead = a.clusterhead;
    b.links.push_back(ba);

    for (std::uint32_t i = 0; i < 10; ++i) {
      views.push_back(std::make_unique<MembershipView>(NodeId{i}));
      ptrs.push_back(views.back().get());
    }
    auto install = [&](const ClusterView& c) {
      ptrs[c.clusterhead.value()]->set_cluster(c);
      network->node(c.clusterhead).set_marked(true);
      for (NodeId m : c.members) {
        ptrs[m.value()]->set_cluster(c);
        network->node(m).set_marked(true);
      }
    };
    install(a);
    install(b);

    FdsConfig fds_config;
    fds_config.heartbeat_interval = SimTime::seconds(3);
    fds = std::make_unique<FdsService>(*network, ptrs, fds_config);
    forwarder = std::make_unique<ForwarderService>(*network, *fds, ptrs,
                                                   fwd_config);
  }

  void run_epochs(int count) {
    SimTime t = network->simulator().now();
    for (int k = 0; k < count; ++k) {
      fds->schedule_epoch(std::uint64_t(k), t);
      t = t + SimTime::seconds(3);
    }
    network->simulator().run_until(t);
  }

  std::unique_ptr<Network> network;
  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  std::unique_ptr<FdsService> fds;
  std::unique_ptr<ForwarderService> forwarder;
};

TEST(Forwarder, ReportCrossesTheLink) {
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{4});
  tc.run_epochs(1);
  // CH B and its members know about A's casualty.
  EXPECT_TRUE(tc.fds->agent_for(NodeId{1}).log().knows(NodeId{4}));
  EXPECT_TRUE(tc.fds->agent_for(NodeId{5}).log().knows(NodeId{4}));
  EXPECT_TRUE(tc.fds->agent_for(NodeId{6}).log().knows(NodeId{4}));
  EXPECT_EQ(tc.forwarder->stats().reports_received, 1u);
}

TEST(Forwarder, NoLossMeansNoRetransmissionTraffic) {
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  const ForwarderStats& stats = tc.forwarder->stats();
  EXPECT_EQ(stats.reports_forwarded, 1u);  // one hop, one forward
  EXPECT_EQ(stats.gw_retries, 0u);
  EXPECT_EQ(stats.bgw_assists, 0u);
  EXPECT_EQ(stats.ch_retransmissions, 0u);
  EXPECT_EQ(stats.explicit_acks, 0u);
}

TEST(Forwarder, DampingSuppressesBackForwarding) {
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  // CH B's relay names cluster A as its source; the gateway must not carry
  // it straight back, so exactly one report ever crosses.
  EXPECT_EQ(tc.forwarder->stats().reports_received, 1u);
}

TEST(Forwarder, ChRetransmitsWhenGatewayMissedTheUpdate) {
  // The GW (node 7) misses CH A's update emission (the CH's first three
  // frames on that link: R-1 heartbeat, R-2 digest, R-3 update); the CH
  // notices the absence of the forward within 2*Thop (Figure 3) and
  // retransmits to the GW directly. Exclude BGWs so they cannot mask the
  // mechanism.
  ForwarderConfig config;
  config.bgw_assist = false;
  TwoClusters tc(std::make_unique<DropFirstK>(NodeId{0}, NodeId{7}, 3),
                 config, /*num_backups=*/0);
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  EXPECT_GE(tc.forwarder->stats().ch_retransmissions, 1u);
  EXPECT_TRUE(tc.fds->agent_for(NodeId{1}).log().knows(NodeId{4}));
}

TEST(Forwarder, BackupGatewayAssistsWhenGatewayForwardIsLost) {
  // The GW's frames never reach CH B: the rank-1 BGW's k*2*Thop timer
  // expires without an implicit ack and it forwards in the GW's stead.
  TwoClusters tc(std::make_unique<DropAlways>(NodeId{7}, NodeId{1}));
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  EXPECT_GE(tc.forwarder->stats().bgw_assists, 1u);
  EXPECT_TRUE(tc.fds->agent_for(NodeId{1}).log().knows(NodeId{4}));
}

TEST(Forwarder, BackupGatewaysStandDownOnImplicitAck) {
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  EXPECT_EQ(tc.forwarder->stats().bgw_assists, 0u);
}

TEST(Forwarder, GwRetriesWithoutImplicitAck) {
  // CH B never hears anyone (all its inbound frames from GW and BGWs are
  // fine, but its own relay emissions are silenced toward the GW), so the
  // GW re-forwards until its retry budget is spent.
  TwoClusters tc(std::make_unique<DropAlways>(NodeId{1}, NodeId{7}),
                 ForwarderConfig{}, /*num_backups=*/0);
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  const ForwarderStats& stats = tc.forwarder->stats();
  EXPECT_EQ(stats.gw_retries, std::uint64_t(ForwarderConfig{}.max_gw_retries));
  // The reports themselves all arrived (only the ack path was cut).
  EXPECT_TRUE(tc.fds->agent_for(NodeId{1}).log().knows(NodeId{4}));
}

TEST(Forwarder, TakeoverUpdateAlsoCrossesClusters) {
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{0});  // CH A itself
  tc.run_epochs(2);
  // Deputy 2 took over and its takeover update reached cluster B.
  EXPECT_TRUE(tc.fds->agent_for(NodeId{1}).log().knows(NodeId{0}));
  EXPECT_EQ(tc.ptrs[5]->cluster()->id, ClusterId{1});
}

TEST(Forwarder, GatewayLearnsNewNeighborChFromTakeover) {
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{1});  // CH B crashes; deputy 5 takes over
  tc.run_epochs(2);
  // The A-side link now targets the new CH of B.
  EXPECT_EQ(tc.ptrs[7]->cluster()->links.front().neighbor_clusterhead,
            NodeId{5});
  // A later failure in A still reaches cluster B via the new CH.
  tc.network->crash(NodeId{3});
  tc.run_epochs(3);
  EXPECT_TRUE(tc.fds->agent_for(NodeId{5}).log().knows(NodeId{3}));
}

TEST(Forwarder, ExplicitAckModeCostsExtraFrames) {
  ForwarderConfig explicit_config;
  explicit_config.ack_mode = AckMode::kExplicit;
  TwoClusters tc(std::make_unique<PerfectLinks>(), explicit_config);
  tc.network->crash(NodeId{4});
  tc.run_epochs(2);
  // One forward-ack (GW -> CH A) plus one receipt-ack (CH B -> GW).
  EXPECT_EQ(tc.forwarder->stats().explicit_acks, 2u);
  EXPECT_TRUE(tc.fds->agent_for(NodeId{1}).log().knows(NodeId{4}));
}

TEST(Forwarder, AggregatedReportsCarryHistory) {
  // First failure propagates; then a second one — its report also carries
  // the first NID, so a cluster that somehow missed report #1 catches up.
  TwoClusters tc(std::make_unique<PerfectLinks>());
  tc.network->crash(NodeId{4});
  tc.run_epochs(1);
  tc.network->crash(NodeId{3});
  tc.run_epochs(2);
  FdsAgent& ch_b = tc.fds->agent_for(NodeId{1});
  EXPECT_TRUE(ch_b.log().knows(NodeId{4}));
  EXPECT_TRUE(ch_b.log().knows(NodeId{3}));
}

/// Three clusters in a line: A - B - C; news from A must reach C via B.
TEST(Forwarder, MultiHopPropagation) {
  NetworkConfig net_config;
  net_config.seed = 23;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({0.0, 0.0});     // 0: CH A
  network.add_node({160.0, 0.0});   // 1: CH B
  network.add_node({320.0, 0.0});   // 2: CH C
  network.add_node({20.0, 20.0});   // 3: A member (victim)
  network.add_node({80.0, 0.0});    // 4: GW A-B
  network.add_node({240.0, 0.0});   // 5: GW B-C, member of B
  network.add_node({150.0, 20.0});  // 6: B member
  network.add_node({310.0, 20.0});  // 7: C member

  ClusterView a;
  a.id = ClusterId{0};
  a.clusterhead = NodeId{0};
  a.members = {NodeId{3}, NodeId{4}};
  ClusterView b;
  b.id = ClusterId{1};
  b.clusterhead = NodeId{1};
  b.members = {NodeId{5}, NodeId{6}};
  ClusterView c;
  c.id = ClusterId{2};
  c.clusterhead = NodeId{2};
  c.members = {NodeId{7}};

  auto link = [](const ClusterView& to, NodeId gw) {
    GatewayLink l;
    l.neighbor_cluster = to.id;
    l.neighbor_clusterhead = to.clusterhead;
    l.gateway = gw;
    return l;
  };
  a.links.push_back(link(b, NodeId{4}));
  b.links.push_back(link(a, NodeId{4}));
  b.links.push_back(link(c, NodeId{5}));
  c.links.push_back(link(b, NodeId{5}));

  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  for (const ClusterView* cv : {&a, &b, &c}) {
    ptrs[cv->clusterhead.value()]->set_cluster(*cv);
    network.node(cv->clusterhead).set_marked(true);
    for (NodeId m : cv->members) {
      ptrs[m.value()]->set_cluster(*cv);
      network.node(m).set_marked(true);
    }
  }

  FdsConfig fds_config;
  fds_config.heartbeat_interval = SimTime::seconds(3);
  FdsService fds(network, ptrs, fds_config);
  ForwarderService forwarder(network, fds, ptrs, ForwarderConfig{});

  network.crash(NodeId{3});
  fds.schedule_epoch(0, SimTime::zero());
  network.simulator().run_until(SimTime::seconds(3));

  EXPECT_TRUE(fds.agent_for(NodeId{2}).log().knows(NodeId{3}));
  EXPECT_TRUE(fds.agent_for(NodeId{7}).log().knows(NodeId{3}));
  EXPECT_EQ(forwarder.stats().reports_forwarded, 2u);  // A->B and B->C
}

}  // namespace
}  // namespace cfds
