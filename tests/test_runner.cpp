// Parallel experiment runner: determinism across thread counts, thread-pool
// shutdown semantics, shard scheduling edge cases, CLI parsing, and the
// JSONL record format.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <initializer_list>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/figures.h"
#include "common/statistics.h"
#include "runner/cli_args.h"
#include "runner/executor.h"
#include "runner/experiment.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

namespace cfds::runner {
namespace {

// --- ThreadPool -------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 64; ++i) {
    done.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ShutdownUnderLoadDrainsEveryQueuedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      (void)pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++count;
      });
    }
    // Destructor fires while most of the queue is still pending.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroMeansHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

// --- Seeding ----------------------------------------------------------

TEST(ShardSeed, DistinctAcrossPointsAndShards) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t point = 0; point < 16; ++point) {
    for (std::uint64_t shard = 0; shard < 16; ++shard) {
      seeds.insert(shard_seed(42, point, shard));
    }
  }
  EXPECT_EQ(seeds.size(), 256u);  // no collisions on a small grid
  EXPECT_NE(shard_seed(1, 0, 0), shard_seed(2, 0, 0));  // seed matters
}

// --- Executor determinism --------------------------------------------

ExperimentSpec small_mc_spec() {
  auto spec = ExperimentSpec::for_kind(EstimatorKind::kMcFalseDetection);
  spec.name = "determinism_probe";
  spec.grid = {GridPoint{20, 0.4}, GridPoint{30, 0.3}, GridPoint{25, 0.5}};
  spec.trials = 30000;
  spec.shard_trials = 4096;  // deliberately not a divisor of trials
  spec.seed = 99;
  return spec;
}

TEST(Executor, IdenticalResultsFor1And2And8Threads) {
  const auto spec = small_mc_spec();
  std::vector<std::vector<PointResult>> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    runs.push_back(run_experiment(spec, pool));
  }
  for (const auto& run : runs) {
    ASSERT_EQ(run.size(), spec.grid.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      EXPECT_EQ(run[i].estimator.trials(), runs[0][i].estimator.trials());
      EXPECT_EQ(run[i].estimator.successes(),
                runs[0][i].estimator.successes());
    }
  }
}

TEST(Executor, JsonlIsByteIdenticalAcrossThreadCounts) {
  const auto spec = small_mc_spec();
  std::vector<std::vector<std::string>> lines;
  for (unsigned threads : {1u, 8u}) {
    ThreadPool pool(threads);
    CollectingSink sink;
    run_experiment(spec, pool, &sink);
    std::vector<std::string> run_lines;
    for (const auto& record : sink.records()) {
      run_lines.push_back(to_jsonl(record, /*include_wall_time=*/false));
    }
    lines.push_back(std::move(run_lines));
  }
  ASSERT_EQ(lines[0].size(), spec.grid.size());
  EXPECT_EQ(lines[0], lines[1]);
}

TEST(Executor, FullStackKindIsDeterministicAcrossThreadCounts) {
  auto spec = ExperimentSpec::for_kind(EstimatorKind::kStackFalseDetection);
  spec.grid = {GridPoint{12, 0.5}};
  spec.trials = 300;
  spec.shard_trials = 64;
  spec.seed = 7;
  std::vector<std::int64_t> successes;
  for (unsigned threads : {1u, 3u}) {
    ThreadPool pool(threads);
    const auto results = run_experiment(spec, pool);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].estimator.trials(), spec.trials);
    successes.push_back(results[0].estimator.successes());
  }
  EXPECT_EQ(successes[0], successes[1]);
}

// Golden JSONL for the CLI invocation
//
//   cfds_cli --mc fig5 --cluster-n 20,30 --trials 4000 --threads 2 --seed 7
//            --no-wall-time
//
// captured before the kernel/graph/dispatch optimisation pass. The simulator
// hot paths may be reworked freely, but these bytes pin the observable
// contract: identical schedule ordering, identical RNG draw sequence,
// identical serialization — at any thread count.
const char* const kFig5GoldenJsonl[] = {
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.050000000000000003,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.10000000000000001,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.15000000000000002,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.20000000000000001,"range":100,"trials":4000,"successes":1,"mean":0.00025000000000000001,"ci99":0.00125,"wilson_lo":2.9352046526831717e-05,"wilson_hi":0.0021257973054509393,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.25,"range":100,"trials":4000,"successes":3,"mean":0.00075000000000000002,"ci99":0.00125,"wilson_lo":0.00018946099099491961,"wilson_hi":0.0029640323836422032,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.30000000000000004,"range":100,"trials":4000,"successes":9,"mean":0.0022499999999999998,"ci99":0.0019296754448739236,"wilson_lo":0.00097736628492629384,"wilson_hi":0.0051711591576888843,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.35000000000000003,"range":100,"trials":4000,"successes":21,"mean":0.0052500000000000003,"ci99":0.0029431931822978211,"wilson_lo":0.0030165121054541396,"wilson_hi":0.0091220774731171524,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.40000000000000002,"range":100,"trials":4000,"successes":55,"mean":0.01375,"ci99":0.0047427147013192113,"wilson_lo":0.0097484547036317155,"wilson_hi":0.019361983260148558,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.45000000000000001,"range":100,"trials":4000,"successes":67,"mean":0.016750000000000001,"ci99":0.0052266272261941903,"wilson_lo":0.012266936081400465,"wilson_hi":0.022833566018335919,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":20,"p":0.5,"range":100,"trials":4000,"successes":186,"mean":0.0465,"ci99":0.0085756879242995729,"wilson_lo":0.0386494574357698,"wilson_hi":0.055852514012198033,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.050000000000000003,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.10000000000000001,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.15000000000000002,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.20000000000000001,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.25,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.30000000000000004,"range":100,"trials":4000,"successes":2,"mean":0.00050000000000000001,"ci99":0.00125,"wilson_lo":9.7620332879947867e-05,"wilson_hi":0.0025567010304274988,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.35000000000000003,"range":100,"trials":4000,"successes":0,"mean":0,"ci99":0.00125,"wilson_lo":1.0842021724855044e-19,"wilson_hi":0.0016559773406480947,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.40000000000000002,"range":100,"trials":4000,"successes":11,"mean":0.0027499999999999998,"ci99":0.0021328018687924049,"wilson_lo":0.001288821172960922,"wilson_hi":0.0058580482923136085,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.45000000000000001,"range":100,"trials":4000,"successes":16,"mean":0.0040000000000000001,"ci99":0.0025706432380709697,"wilson_lo":0.0021246901799837513,"wilson_hi":0.0075180393419391591,"seed":7,"shards":1})",
    R"({"experiment":"mc_false_detection","kind":"mc_false_detection","n":30,"p":0.5,"range":100,"trials":4000,"successes":60,"mean":0.014999999999999999,"ci99":0.0049504637871365144,"wilson_lo":0.010791950197486591,"wilson_hi":0.020814347822942059,"seed":7,"shards":1})",
};

TEST(Executor, Fig5JsonlMatchesPrePrGoldenAtAnyThreadCount) {
  // Reconstructs the CLI's --mc fig5 spec in-process (same grid, trials,
  // seed) and compares serialized records byte-for-byte with the golden.
  auto spec = ExperimentSpec::for_kind(EstimatorKind::kMcFalseDetection);
  std::vector<double> ps;
  for (int i = 0; i < analysis::sweep_points(); ++i) {
    ps.push_back(analysis::sweep_p(i));
  }
  spec.grid = make_grid({20, 30}, ps, 100.0);
  spec.trials = 4000;
  spec.seed = 7;

  constexpr std::size_t kGoldenLines =
      sizeof kFig5GoldenJsonl / sizeof kFig5GoldenJsonl[0];
  for (unsigned threads : {1u, 8u}) {
    ThreadPool pool(threads);
    CollectingSink sink;
    run_experiment(spec, pool, &sink);
    ASSERT_EQ(sink.records().size(), kGoldenLines) << threads << " threads";
    for (std::size_t i = 0; i < kGoldenLines; ++i) {
      EXPECT_EQ(to_jsonl(sink.records()[i], /*include_wall_time=*/false),
                kFig5GoldenJsonl[i])
          << "line " << i << " with " << threads << " threads";
    }
  }
}

TEST(Executor, EmptyGridYieldsNoPointsAndNoHang) {
  auto spec = small_mc_spec();
  spec.grid.clear();
  ThreadPool pool(2);
  CollectingSink sink;
  EXPECT_TRUE(run_experiment(spec, pool, &sink).empty());
  EXPECT_TRUE(sink.records().empty());
}

TEST(Executor, NonPositiveTrialsYieldNoPoints) {
  auto spec = small_mc_spec();
  spec.trials = 0;
  ThreadPool pool(2);
  EXPECT_TRUE(run_experiment(spec, pool).empty());
}

TEST(Executor, ShardDecompositionCoversExactlyTheTrialBudget) {
  auto spec = small_mc_spec();
  spec.trials = 10001;  // prime-ish: forces a short tail shard
  spec.shard_trials = 1000;
  ThreadPool pool(4);
  const auto results = run_experiment(spec, pool);
  for (const auto& result : results) {
    EXPECT_EQ(result.estimator.trials(), spec.trials);
    EXPECT_EQ(result.shards, 11);
  }
}

TEST(Executor, MatchesDirectSerialEstimatorOnSingleShard) {
  // One shard spanning the whole budget reduces to the serial estimator
  // with Rng(shard_seed(...)) — the parallel path adds nothing else.
  auto spec = small_mc_spec();
  spec.grid = {GridPoint{20, 0.4}};
  spec.trials = 5000;
  spec.shard_trials = 5000;
  ThreadPool pool(2);
  const auto results = run_experiment(spec, pool);
  const auto direct =
      run_shard(spec, spec.grid[0], spec.trials, shard_seed(spec.seed, 0, 0));
  EXPECT_EQ(results[0].estimator.successes(), direct.successes());
  EXPECT_EQ(results[0].estimator.trials(), direct.trials());
}

// --- Result records ---------------------------------------------------

TEST(ResultSink, RecordsCarryMergedCountsAndWilsonInterval) {
  const auto spec = small_mc_spec();
  ThreadPool pool(2);
  CollectingSink sink;
  run_experiment(spec, pool, &sink);
  ASSERT_EQ(sink.records().size(), spec.grid.size());
  for (const auto& record : sink.records()) {
    EXPECT_EQ(record.trials, spec.trials);
    EXPECT_DOUBLE_EQ(record.mean,
                     double(record.successes) / double(record.trials));
    EXPECT_LE(record.wilson.lo, record.mean);
    EXPECT_GE(record.wilson.hi, record.mean);
    EXPECT_GE(record.wilson.lo, 0.0);
    EXPECT_LE(record.wilson.hi, 1.0);
    EXPECT_EQ(record.seed, spec.seed);
  }
}

TEST(ResultSink, JsonlLineHasTheDocumentedFields) {
  PointRecord record;
  record.experiment = "probe";
  record.kind = EstimatorKind::kMcIncompleteness;
  record.point = GridPoint{50, 0.25, 100.0};
  record.trials = 1000;
  record.successes = 250;
  record.mean = 0.25;
  record.ci99 = 0.035;
  record.wilson = wilson_ci99(250, 1000);
  record.seed = 17;
  record.shards = 2;
  record.wall_ms = 12.5;

  const std::string with_time = to_jsonl(record, true);
  EXPECT_NE(with_time.find("\"experiment\":\"probe\""), std::string::npos);
  EXPECT_NE(with_time.find("\"kind\":\"mc_incompleteness\""),
            std::string::npos);
  EXPECT_NE(with_time.find("\"n\":50"), std::string::npos);
  EXPECT_NE(with_time.find("\"p\":0.25"), std::string::npos);
  EXPECT_NE(with_time.find("\"trials\":1000"), std::string::npos);
  EXPECT_NE(with_time.find("\"successes\":250"), std::string::npos);
  EXPECT_NE(with_time.find("\"wilson_lo\":"), std::string::npos);
  EXPECT_NE(with_time.find("\"wall_ms\":12.500"), std::string::npos);
  EXPECT_EQ(with_time.back(), '}');

  const std::string without_time = to_jsonl(record, false);
  EXPECT_EQ(without_time.find("wall_ms"), std::string::npos);
}

// --- Spec helpers -----------------------------------------------------

TEST(ExperimentSpec, GridCrossProductIsRowMajor) {
  const auto grid = make_grid({50, 75}, {0.1, 0.2, 0.3});
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_EQ(grid[0].n, 50);
  EXPECT_DOUBLE_EQ(grid[0].p, 0.1);
  EXPECT_EQ(grid[2].n, 50);
  EXPECT_DOUBLE_EQ(grid[2].p, 0.3);
  EXPECT_EQ(grid[3].n, 75);
  EXPECT_DOUBLE_EQ(grid[3].p, 0.1);
}

TEST(ExperimentSpec, FigureFactoriesSetTheAnalysisConditioning) {
  const auto fig7 = ExperimentSpec::for_kind(EstimatorKind::kStackIncompleteness);
  EXPECT_TRUE(fig7.pin_edge_node);
  EXPECT_EQ(fig7.num_deputies, 0u);
  const auto fig6 =
      ExperimentSpec::for_kind(EstimatorKind::kStackFalseDetectionOnCh);
  EXPECT_TRUE(fig6.pin_deputy_center);
  EXPECT_FALSE(fig6.pin_edge_node);
  EXPECT_EQ(fig6.num_deputies, 1u);
}

TEST(ExperimentSpec, ParsesCliKindSpellings) {
  EstimatorKind kind;
  EXPECT_TRUE(parse_estimator_kind("fig5", &kind));
  EXPECT_EQ(kind, EstimatorKind::kMcFalseDetection);
  EXPECT_TRUE(parse_estimator_kind("fig7-stack", &kind));
  EXPECT_EQ(kind, EstimatorKind::kStackIncompleteness);
  EXPECT_FALSE(parse_estimator_kind("fig8", &kind));
}

// --- FlagSet ----------------------------------------------------------

std::vector<char*> make_argv(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  for (const char* arg : args) argv.push_back(const_cast<char*>(arg));
  argv.push_back(nullptr);
  return argv;
}

TEST(FlagSet, ConsumesKnownFlagsAndLeavesTheRest) {
  RunnerOptions options;
  FlagSet flags;
  add_runner_flags(flags, options);
  auto argv = make_argv({"prog", "--threads", "4", "--other", "x", "--trials",
                         "5000", "--out", "r.jsonl"});
  int argc = int(argv.size()) - 1;
  std::string error;
  ASSERT_TRUE(flags.parse(argc, argv.data(), &error)) << error;
  EXPECT_EQ(options.threads, 4);
  EXPECT_EQ(options.trials, 5000);
  EXPECT_EQ(options.out, "r.jsonl");
  ASSERT_EQ(argc, 3);  // prog --other x
  EXPECT_STREQ(argv[1], "--other");
  EXPECT_STREQ(argv[2], "x");
}

TEST(FlagSet, RejectsMalformedAndMissingValues) {
  RunnerOptions options;
  FlagSet flags;
  add_runner_flags(flags, options);
  {
    auto argv = make_argv({"prog", "--threads", "lots"});
    int argc = int(argv.size()) - 1;
    std::string error;
    EXPECT_FALSE(flags.parse(argc, argv.data(), &error));
    EXPECT_NE(error.find("--threads"), std::string::npos);
  }
  {
    auto argv = make_argv({"prog", "--seed"});
    int argc = int(argv.size()) - 1;
    std::string error;
    EXPECT_FALSE(flags.parse(argc, argv.data(), &error));
  }
}

TEST(FlagSet, SeedAndTrialsSentinelsFallBackToCallerDefaults) {
  RunnerOptions options;
  EXPECT_EQ(options.seed_or(0xF15), 0xF15u);
  EXPECT_EQ(options.trials_or(400000), 400000);
  options.seed = 0;  // explicit zero is a real seed, not "unset"
  options.trials = 7;
  EXPECT_EQ(options.seed_or(0xF15), 0u);
  EXPECT_EQ(options.trials_or(400000), 7);
}

TEST(FlagSet, ParsesIntLists) {
  std::vector<int> values;
  EXPECT_TRUE(parse_int_list("50,75,100", &values));
  EXPECT_EQ(values, (std::vector<int>{50, 75, 100}));
  EXPECT_TRUE(parse_int_list("20", &values));
  EXPECT_EQ(values, (std::vector<int>{20}));
  EXPECT_FALSE(parse_int_list("50,,75", &values));
  EXPECT_FALSE(parse_int_list("", &values));
  EXPECT_FALSE(parse_int_list("50,abc", &values));
}

}  // namespace
}  // namespace cfds::runner
