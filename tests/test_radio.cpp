// Unit tests for the wireless substrate: loss models, promiscuous channel.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "common/rng.h"
#include "event/simulator.h"
#include "radio/channel.h"
#include "radio/loss_model.h"

// Global allocation counter for the broadcast fan-out test below. Same
// pattern as tests/test_simulator.cpp: this binary overrides
// ::operator new/delete, and the counter only ticks between
// begin/end so the rest of the suite is unaffected.
namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// The counting operator new allocates with std::malloc, so the matching
// operator delete releases with std::free. GCC's caller-side heuristic only
// sees "delete expression ends in free()" and flags every inlined delete
// site; the pairing is correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace cfds {
namespace {

template <typename Body>
std::size_t count_allocations(const Body& body) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

struct TestPayload final : Payload {
  static constexpr PayloadKind kTag = PayloadKind::kTest;
  static constexpr bool matches(PayloadKind k) { return k == kTag; }
  TestPayload() : Payload(kTag) {}

  int value = 0;
  [[nodiscard]] std::string_view kind() const override { return "test"; }
  [[nodiscard]] std::size_t size_bytes() const override { return 4; }
};

PayloadPtr make_payload(int value) {
  auto p = std::make_shared<TestPayload>();
  p->value = value;
  return p;
}

class ChannelFixture : public ::testing::Test {
 protected:
  ChannelFixture()
      : loss_(), channel_(sim_, loss_, ChannelConfig{}, Rng(1)) {}

  Radio& add_radio(std::uint32_t id, Vec2 pos) {
    const std::uint32_t slot = store_.add(pos, /*initial_energy_uj=*/1e9);
    radios_.push_back(std::make_unique<Radio>(store_, slot, NodeId{id}));
    channel_.attach(*radios_.back());
    return *radios_.back();
  }

  Simulator sim_;
  PerfectLinks loss_;
  Channel channel_;
  NodeStore store_;
  std::vector<std::unique_ptr<Radio>> radios_;
};

TEST_F(ChannelFixture, DeliversWithinRange) {
  Radio& a = add_radio(0, {0, 0});
  Radio& b = add_radio(1, {50, 0});
  int received = 0;
  b.set_receive_handler([&](const Reception& r) {
    EXPECT_EQ(r.sender, NodeId{0});
    EXPECT_EQ(payload_cast<TestPayload>(r.payload)->value, 42);
    ++received;
  });
  a.send(make_payload(42));
  sim_.run_to_completion();
  EXPECT_EQ(received, 1);
}

TEST_F(ChannelFixture, DoesNotDeliverBeyondRange) {
  Radio& a = add_radio(0, {0, 0});
  Radio& b = add_radio(1, {150, 0});  // default range is 100
  int received = 0;
  b.set_receive_handler([&](const Reception&) { ++received; });
  a.send(make_payload(1));
  sim_.run_to_completion();
  EXPECT_EQ(received, 0);
}

TEST_F(ChannelFixture, PromiscuousDeliveryToAllNeighbors) {
  Radio& a = add_radio(0, {0, 0});
  int receptions = 0;
  std::vector<Radio*> listeners;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    Radio& r = add_radio(i, {double(i) * 10.0, 0});
    r.set_receive_handler([&](const Reception& rec) {
      // Addressed to node 3, but everyone in range hears it.
      EXPECT_EQ(rec.intended, NodeId{3});
      ++receptions;
    });
  }
  a.send(make_payload(7), NodeId{3});
  sim_.run_to_completion();
  EXPECT_EQ(receptions, 5);
}

TEST_F(ChannelFixture, SenderDoesNotHearItself) {
  Radio& a = add_radio(0, {0, 0});
  int self_receptions = 0;
  a.set_receive_handler([&](const Reception&) { ++self_receptions; });
  a.send(make_payload(1));
  sim_.run_to_completion();
  EXPECT_EQ(self_receptions, 0);
}

TEST_F(ChannelFixture, PoweredOffRadioNeitherSendsNorReceives) {
  Radio& a = add_radio(0, {0, 0});
  Radio& b = add_radio(1, {10, 0});
  int received = 0;
  b.set_receive_handler([&](const Reception&) { ++received; });

  b.set_powered(false);
  a.send(make_payload(1));
  sim_.run_to_completion();
  EXPECT_EQ(received, 0);

  b.set_powered(true);
  a.set_powered(false);
  a.send(make_payload(2));  // silently dropped
  sim_.run_to_completion();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(a.counters().frames_sent, 1u);  // only the powered send counted
}

TEST_F(ChannelFixture, CrashBetweenEmissionAndArrivalDropsFrame) {
  Radio& a = add_radio(0, {0, 0});
  Radio& b = add_radio(1, {10, 0});
  int received = 0;
  b.set_receive_handler([&](const Reception&) { ++received; });
  a.send(make_payload(1));
  b.set_powered(false);  // crashes while the frame is in flight
  sim_.run_to_completion();
  EXPECT_EQ(received, 0);
}

TEST_F(ChannelFixture, DeliveryWithinOneHopBound) {
  Radio& a = add_radio(0, {0, 0});
  Radio& b = add_radio(1, {10, 0});
  SimTime arrival = SimTime::zero();
  b.set_receive_handler([&](const Reception& r) {
    arrival = sim_.now();
    EXPECT_EQ(r.sent_at, SimTime::zero());
  });
  a.send(make_payload(1));
  sim_.run_to_completion();
  EXPECT_GT(arrival, SimTime::zero());
  EXPECT_LT(arrival, channel_.config().t_hop);
}

TEST_F(ChannelFixture, CountersTrackTraffic) {
  Radio& a = add_radio(0, {0, 0});
  Radio& b = add_radio(1, {10, 0});
  b.set_receive_handler([](const Reception&) {});
  a.send(make_payload(1));
  a.send(make_payload(2));
  sim_.run_to_completion();
  EXPECT_EQ(a.counters().frames_sent, 2u);
  EXPECT_EQ(a.counters().bytes_sent, 8u);
  EXPECT_EQ(b.counters().frames_received, 2u);
  EXPECT_EQ(channel_.stats().transmissions, 2u);
  EXPECT_EQ(channel_.stats().deliveries, 2u);
}

TEST_F(ChannelFixture, NeighborsOfUsesRange) {
  add_radio(0, {0, 0});
  add_radio(1, {50, 0});
  add_radio(2, {99, 0});
  add_radio(3, {101, 0});
  const auto neighbors = channel_.neighbors_of(NodeId{0});
  EXPECT_EQ(neighbors.size(), 2u);
}

TEST(LossModels, BernoulliMatchesProbability) {
  BernoulliLoss loss(0.3);
  Rng rng(5);
  int lost = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (loss.lost(NodeId{0}, {0, 0}, NodeId{1}, {1, 1}, rng)) ++lost;
  }
  EXPECT_NEAR(double(lost) / trials, 0.3, 0.01);
}

TEST(LossModels, BernoulliExtremes) {
  Rng rng(5);
  BernoulliLoss never(0.0);
  BernoulliLoss always(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.lost(NodeId{0}, {}, NodeId{1}, {}, rng));
    EXPECT_TRUE(always.lost(NodeId{0}, {}, NodeId{1}, {}, rng));
  }
}

TEST(LossModels, GilbertElliottStationaryLossFormula) {
  // stationary = f * p_bad + (1-f) * p_good with f = p_gb / (p_gb + p_bg).
  GilbertElliottLoss::Params params;
  params.p_good = 0.02;
  params.p_bad = 0.7;
  params.p_gb = 0.1;
  params.p_bg = 0.4;
  const double f = params.p_gb / (params.p_gb + params.p_bg);
  EXPECT_NEAR(GilbertElliottLoss(params).stationary_loss(),
              f * params.p_bad + (1.0 - f) * params.p_good, 1e-12);

  // A chain that almost never enters Bad approaches Bernoulli(p_good).
  params.p_gb = 1e-9;
  EXPECT_NEAR(GilbertElliottLoss(params).stationary_loss(), params.p_good,
              1e-6);
}

TEST(LossModels, GilbertElliottBurstLengthExceedsMatchedBernoulli) {
  GilbertElliottLoss::Params params;
  params.p_good = 0.01;
  params.p_bad = 0.9;
  params.p_gb = 0.05;
  params.p_bg = 0.3;
  GilbertElliottLoss loss(params);
  Rng rng(13);

  // One long seeded sample on a single link: empirical rate and the mean
  // length of consecutive-loss runs.
  const int trials = 400000;
  int lost = 0, bursts = 0, run = 0;
  double burst_total = 0.0;
  for (int i = 0; i < trials; ++i) {
    if (loss.lost(NodeId{0}, {}, NodeId{1}, {}, rng)) {
      ++lost;
      ++run;
    } else if (run > 0) {
      ++bursts;
      burst_total += run;
      run = 0;
    }
  }
  const double rate = double(lost) / trials;
  EXPECT_NEAR(rate, loss.stationary_loss(), 0.01);

  // An iid Bernoulli channel with the same rate has mean burst 1/(1-p);
  // the whole point of Gilbert-Elliott is to be burstier than that.
  const double mean_burst = burst_total / bursts;
  const double bernoulli_burst = 1.0 / (1.0 - rate);
  EXPECT_GT(mean_burst, 2.0 * bernoulli_burst);
}

TEST(LossModels, GilbertElliottMatchesStationaryRate) {
  GilbertElliottLoss::Params params;
  GilbertElliottLoss loss(params);
  Rng rng(7);
  int lost = 0;
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) {
    if (loss.lost(NodeId{0}, {}, NodeId{1}, {}, rng)) ++lost;
  }
  EXPECT_NEAR(double(lost) / trials, loss.stationary_loss(), 0.01);
}

TEST(LossModels, GilbertElliottIsBursty) {
  // Consecutive losses on one link should exceed the iid expectation.
  GilbertElliottLoss::Params params;
  params.p_good = 0.01;
  params.p_bad = 0.9;
  GilbertElliottLoss loss(params);
  Rng rng(9);
  int pairs = 0, both = 0;
  bool prev = false;
  for (int i = 0; i < 200000; ++i) {
    const bool cur = loss.lost(NodeId{0}, {}, NodeId{1}, {}, rng);
    if (i > 0) {
      ++pairs;
      if (prev && cur) ++both;
    }
    prev = cur;
  }
  const double stationary = loss.stationary_loss();
  EXPECT_GT(double(both) / pairs, stationary * stationary * 1.5);
}

TEST(LossModels, DistanceLossGrowsWithDistance) {
  DistanceLoss loss(0.05, 0.6, 100.0);
  EXPECT_NEAR(loss.probability_at(0.0), 0.05, 1e-12);
  EXPECT_NEAR(loss.probability_at(100.0), 0.6, 1e-12);
  EXPECT_LT(loss.probability_at(30.0), loss.probability_at(90.0));
  EXPECT_NEAR(loss.probability_at(500.0), 0.6, 1e-12);  // clamped
}

// --- Broadcast fan-out allocation behavior ----------------------------

TEST_F(ChannelFixture, SteadyStateBroadcastIsAllocationFreeRegardlessOfFanout) {
  // A broadcast to k receivers must cost O(1) allocations, not O(k): one
  // pooled Transmission record shared by every delivery, one batch timer
  // slot, and k trivially-copyable queue entries in pre-grown buckets. At
  // steady state (slab, pool, and buckets warmed) that is zero allocations
  // per broadcast — for 8 receivers or 64.
  // Delivery delays spread each broadcast across ~160 calendar buckets and
  // simulated time keeps advancing into fresh ones, so pre-grow the wheel
  // (Simulator::reserve spreads the budget per bucket).
  sim_.reserve(8 * CalendarQueue::kNumBuckets);
  Radio& sender = add_radio(0, {50, 50});
  constexpr std::uint32_t kReceivers = 64;
  int received = 0;
  for (std::uint32_t i = 1; i <= kReceivers; ++i) {
    // An 8x8 grid with 10 m pitch: every receiver is within the default
    // 100 m range of the sender at (50, 50).
    Radio& r = add_radio(i, {double((i - 1) % 8) * 10.0,
                             double((i - 1) / 8) * 10.0});
    r.set_receive_handler([&received](const Reception&) { ++received; });
  }
  PayloadPtr payload = make_payload(7);
  for (int i = 0; i < 50; ++i) {  // warm up to steady state
    sender.send(payload);
    sim_.run_to_completion();
  }
  received = 0;
  const std::size_t allocations = count_allocations([&] {
    for (int i = 0; i < 100; ++i) {
      sender.send(payload);
      sim_.run_to_completion();
    }
  });
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(received, int(100 * kReceivers));
  EXPECT_EQ(channel_.stats().max_fanout, std::uint64_t(kReceivers));
}

}  // namespace
}  // namespace cfds
