// Unit tests for the pure detection rules (Section 4.2).

#include <gtest/gtest.h>

#include "fds/detector.h"

namespace cfds {
namespace {

RoundEvidence evidence_with(std::initializer_list<std::uint32_t> heartbeats) {
  RoundEvidence e;
  for (auto h : heartbeats) e.heartbeats.insert(NodeId{h});
  return e;
}

TEST(Detector, HeartbeatAloneClearsSuspicion) {
  const RoundEvidence e = evidence_with({1, 2});
  EXPECT_FALSE(silent(NodeId{1}, e, RuleMode::kFull));
  EXPECT_TRUE(silent(NodeId{3}, e, RuleMode::kFull));
}

TEST(Detector, OwnDigestClearsSuspicion) {
  // Time redundancy: heartbeat lost, but the digest from v arrived.
  RoundEvidence e;
  e.digests[NodeId{4}] = {};
  EXPECT_FALSE(silent(NodeId{4}, e, RuleMode::kFull));
  EXPECT_FALSE(silent(NodeId{4}, e, RuleMode::kNoSpatial));
  // A heartbeat-only detector ignores the digest.
  EXPECT_TRUE(silent(NodeId{4}, e, RuleMode::kHeartbeatOnly));
}

TEST(Detector, WitnessDigestClearsSuspicionOnlyInFullMode) {
  // Spatial redundancy: node 5 silent to the CH, but node 6 heard it.
  RoundEvidence e;
  e.digests[NodeId{6}] = {NodeId{5}};
  EXPECT_FALSE(silent(NodeId{5}, e, RuleMode::kFull));
  EXPECT_TRUE(silent(NodeId{5}, e, RuleMode::kNoSpatial));
  EXPECT_TRUE(silent(NodeId{5}, e, RuleMode::kHeartbeatOnly));
}

TEST(Detector, SelfMentionInOwnDigestDoesNotCount) {
  // A digest from v mentioning v is direct evidence anyway; but a digest
  // from v mentioning *only others* still proves v alive (it sent a frame).
  RoundEvidence e;
  e.digests[NodeId{7}] = {NodeId{7}};
  EXPECT_FALSE(silent(NodeId{7}, e, RuleMode::kFull));
}

TEST(Detector, DetectFailedFiltersExpectedMembers) {
  RoundEvidence e = evidence_with({1, 3});
  e.digests[NodeId{5}] = {NodeId{2}};
  const std::vector<NodeId> expected{NodeId{1}, NodeId{2}, NodeId{3},
                                     NodeId{4}, NodeId{5}};
  // 1, 3 heartbeats; 2 witnessed by 5; 5 sent a digest; 4 fully silent.
  const auto failed = detect_failed(expected, e, RuleMode::kFull);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], NodeId{4});
}

TEST(Detector, DetectFailedEmptyEvidenceFlagsEveryone) {
  const std::vector<NodeId> expected{NodeId{1}, NodeId{2}};
  const auto failed = detect_failed(expected, RoundEvidence{}, RuleMode::kFull);
  EXPECT_EQ(failed.size(), 2u);
}

TEST(Detector, DetectFailedSortsOutput) {
  const std::vector<NodeId> expected{NodeId{9}, NodeId{1}, NodeId{5}};
  const auto failed = detect_failed(expected, RoundEvidence{}, RuleMode::kFull);
  EXPECT_TRUE(std::is_sorted(failed.begin(), failed.end()));
}

TEST(Detector, ClusterheadRuleRequiresAllThreeConditions) {
  const NodeId ch{0};
  {  // condition 1 fails: heartbeat heard
    RoundEvidence e = evidence_with({0});
    EXPECT_FALSE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
  {  // condition 2 fails: witness digest reflects the CH
    RoundEvidence e;
    e.digests[NodeId{3}] = {NodeId{0}};
    EXPECT_FALSE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
  {  // condition 3 fails: the R-3 update arrived
    RoundEvidence e;
    e.ch_update_heard = true;
    EXPECT_FALSE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
  {  // all conditions met
    RoundEvidence e;
    e.digests[NodeId{3}] = {NodeId{4}};  // digest exists but no CH mention
    EXPECT_TRUE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
}

TEST(Detector, EvidenceClearResets) {
  RoundEvidence e = evidence_with({1});
  e.digests[NodeId{2}] = {NodeId{1}};
  e.ch_update_heard = true;
  e.clear();
  EXPECT_TRUE(e.heartbeats.empty());
  EXPECT_TRUE(e.digests.empty());
  EXPECT_FALSE(e.ch_update_heard);
}

// Soundness: under the fail-stop model a crashed node generates no frames,
// so *no possible evidence set* that truthfully reflects transmissions can
// clear it. Conversely the rule only clears nodes with genuine evidence.
TEST(Detector, NoEvidenceChannelCanFabricateLife) {
  RoundEvidence e = evidence_with({1, 2, 3});
  e.digests[NodeId{1}] = {NodeId{2}, NodeId{3}};
  e.digests[NodeId{2}] = {NodeId{1}};
  // Node 9 crashed: it appears in no heartbeat and no digest. All modes
  // must flag it.
  for (RuleMode mode :
       {RuleMode::kFull, RuleMode::kNoSpatial, RuleMode::kHeartbeatOnly}) {
    EXPECT_TRUE(silent(NodeId{9}, e, mode));
  }
}

}  // namespace
}  // namespace cfds
