// Unit tests for the pure detection rules (Section 4.2).

#include <gtest/gtest.h>

#include "fds/detector.h"

namespace cfds {
namespace {

RoundEvidence evidence_with(std::initializer_list<std::uint32_t> heartbeats) {
  RoundEvidence e;
  for (auto h : heartbeats) e.heartbeats.insert(NodeId{h});
  return e;
}

TEST(Detector, HeartbeatAloneClearsSuspicion) {
  const RoundEvidence e = evidence_with({1, 2});
  EXPECT_FALSE(silent(NodeId{1}, e, RuleMode::kFull));
  EXPECT_TRUE(silent(NodeId{3}, e, RuleMode::kFull));
}

TEST(Detector, OwnDigestClearsSuspicion) {
  // Time redundancy: heartbeat lost, but the digest from v arrived.
  RoundEvidence e;
  e.digest_from(NodeId{4}) = {};
  EXPECT_FALSE(silent(NodeId{4}, e, RuleMode::kFull));
  EXPECT_FALSE(silent(NodeId{4}, e, RuleMode::kNoSpatial));
  // A heartbeat-only detector ignores the digest.
  EXPECT_TRUE(silent(NodeId{4}, e, RuleMode::kHeartbeatOnly));
}

TEST(Detector, WitnessDigestClearsSuspicionOnlyInFullMode) {
  // Spatial redundancy: node 5 silent to the CH, but node 6 heard it.
  RoundEvidence e;
  e.digest_from(NodeId{6}) = {NodeId{5}};
  EXPECT_FALSE(silent(NodeId{5}, e, RuleMode::kFull));
  EXPECT_TRUE(silent(NodeId{5}, e, RuleMode::kNoSpatial));
  EXPECT_TRUE(silent(NodeId{5}, e, RuleMode::kHeartbeatOnly));
}

TEST(Detector, SelfMentionInOwnDigestDoesNotCount) {
  // A digest from v mentioning v is direct evidence anyway; but a digest
  // from v mentioning *only others* still proves v alive (it sent a frame).
  RoundEvidence e;
  e.digest_from(NodeId{7}) = {NodeId{7}};
  EXPECT_FALSE(silent(NodeId{7}, e, RuleMode::kFull));
}

TEST(Detector, DetectFailedFiltersExpectedMembers) {
  RoundEvidence e = evidence_with({1, 3});
  e.digest_from(NodeId{5}) = {NodeId{2}};
  const std::vector<NodeId> expected{NodeId{1}, NodeId{2}, NodeId{3},
                                     NodeId{4}, NodeId{5}};
  // 1, 3 heartbeats; 2 witnessed by 5; 5 sent a digest; 4 fully silent.
  const auto failed = detect_failed(expected, e, RuleMode::kFull);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], NodeId{4});
}

TEST(Detector, DetectFailedEmptyEvidenceFlagsEveryone) {
  const std::vector<NodeId> expected{NodeId{1}, NodeId{2}};
  const auto failed = detect_failed(expected, RoundEvidence{}, RuleMode::kFull);
  EXPECT_EQ(failed.size(), 2u);
}

TEST(Detector, DetectFailedSortsOutput) {
  const std::vector<NodeId> expected{NodeId{9}, NodeId{1}, NodeId{5}};
  const auto failed = detect_failed(expected, RoundEvidence{}, RuleMode::kFull);
  EXPECT_TRUE(std::is_sorted(failed.begin(), failed.end()));
}

TEST(Detector, ClusterheadRuleRequiresAllThreeConditions) {
  const NodeId ch{0};
  {  // condition 1 fails: heartbeat heard
    RoundEvidence e = evidence_with({0});
    EXPECT_FALSE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
  {  // condition 2 fails: witness digest reflects the CH
    RoundEvidence e;
    e.digest_from(NodeId{3}) = {NodeId{0}};
    EXPECT_FALSE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
  {  // condition 3 fails: the R-3 update arrived
    RoundEvidence e;
    e.ch_update_heard = true;
    EXPECT_FALSE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
  {  // all conditions met
    RoundEvidence e;
    e.digest_from(NodeId{3}) = {NodeId{4}};  // digest exists but no CH mention
    EXPECT_TRUE(clusterhead_failed(ch, e, RuleMode::kFull));
  }
}

TEST(Detector, EvidenceClearResets) {
  RoundEvidence e = evidence_with({1});
  e.digest_from(NodeId{2}) = {NodeId{1}};
  e.ch_update_heard = true;
  e.clear();
  EXPECT_TRUE(e.heartbeats.empty());
  EXPECT_TRUE(e.digest_index().empty());
  EXPECT_FALSE(e.ch_update_heard);
}

TEST(Detector, EvidenceDigestSlotsRecycleAcrossEraseAndClear) {
  RoundEvidence e;
  e.digest_from(NodeId{1}) = {NodeId{2}};
  e.digest_from(NodeId{2}) = {NodeId{1}, NodeId{3}};
  EXPECT_TRUE(e.has_digest_from(NodeId{1}));
  // erase_digest recycles the slot: the next new sender reuses it empty.
  e.erase_digest(NodeId{1});
  EXPECT_FALSE(e.has_digest_from(NodeId{1}));
  EXPECT_TRUE(e.digest_from(NodeId{5}).empty());
  EXPECT_EQ(e.digest_index().size(), 2u);
  // Re-recording a sender after clear() must start from an empty set, not
  // leak the previous execution's entries out of the recycled slot.
  e.clear();
  EXPECT_TRUE(e.digest_from(NodeId{2}).empty());
  e.digest_from(NodeId{2}).insert(NodeId{9});
  EXPECT_FALSE(silent(NodeId{9}, e, RuleMode::kFull));
  EXPECT_TRUE(silent(NodeId{3}, e, RuleMode::kFull));
}

// Soundness: under the fail-stop model a crashed node generates no frames,
// so *no possible evidence set* that truthfully reflects transmissions can
// clear it. Conversely the rule only clears nodes with genuine evidence.
TEST(Detector, NoEvidenceChannelCanFabricateLife) {
  RoundEvidence e = evidence_with({1, 2, 3});
  e.digest_from(NodeId{1}) = {NodeId{2}, NodeId{3}};
  e.digest_from(NodeId{2}) = {NodeId{1}};
  // Node 9 crashed: it appears in no heartbeat and no digest. All modes
  // must flag it.
  for (RuleMode mode :
       {RuleMode::kFull, RuleMode::kNoSpatial, RuleMode::kHeartbeatOnly}) {
    EXPECT_TRUE(silent(NodeId{9}, e, mode));
  }
}

// --- self-tuning accrual detection (FdsConfig::adaptive_enabled) ------------

TEST(LinkQuality, MilliLog10MatchesReferenceValues) {
  // Shift-and-square fixed point gives 1/1024 log2 resolution, well inside
  // +-3 milli of the real logarithm over the whole per-mille range.
  EXPECT_EQ(milli_log10(0), 0u);
  EXPECT_EQ(milli_log10(1), 0u);
  EXPECT_NEAR(double(milli_log10(2)), 301.0, 3.0);
  EXPECT_NEAR(double(milli_log10(10)), 1000.0, 3.0);
  EXPECT_NEAR(double(milli_log10(100)), 2000.0, 3.0);
  EXPECT_NEAR(double(milli_log10(300)), 2477.0, 3.0);
  EXPECT_NEAR(double(milli_log10(1000)), 3000.0, 3.0);
  for (std::uint32_t x = 2; x <= 1000; ++x) {
    EXPECT_GE(milli_log10(x), milli_log10(x - 1)) << x;  // monotone
  }
}

TEST(LinkQuality, SurpriseCalibration) {
  using LQ = LinkQualityEstimator;
  // 1% floor: a single miss (2000 milli) crosses the default 1500 threshold
  // — static-rule latency over clean links.
  EXPECT_NEAR(double(LQ::surprise_milli(LQ::kMinLossPm)), 2000.0, 3.0);
  // 30% link: ~523 per miss, so three consecutive misses are demanded.
  const std::uint32_t s300 = LQ::surprise_milli(300);
  EXPECT_NEAR(double(s300), 523.0, 4.0);
  EXPECT_LT(2 * s300, 1500u);
  EXPECT_GE(3 * s300, 1500u);
  // Out-of-range inputs clamp to the floor/ceiling instead of misbehaving.
  EXPECT_EQ(LQ::surprise_milli(0), LQ::surprise_milli(LQ::kMinLossPm));
  EXPECT_EQ(LQ::surprise_milli(1000), LQ::surprise_milli(LQ::kMaxLossPm));
}

TEST(LinkQuality, EwmaTracksMissesAndClamps) {
  LinkQualityEstimator est;
  const NodeId v{5};
  EXPECT_EQ(est.loss_pm(v), LinkQualityEstimator::kMinLossPm);  // untracked
  est.observe(v, true);
  EXPECT_EQ(est.loss_pm(v), LinkQualityEstimator::kMinLossPm);
  est.observe(v, false);  // (3*10 + 1000) / 4
  EXPECT_EQ(est.loss_pm(v), 257u);
  est.observe(v, false);  // (3*257 + 1000) / 4
  EXPECT_EQ(est.loss_pm(v), 442u);
  for (int i = 0; i < 20; ++i) est.observe(v, false);
  EXPECT_EQ(est.loss_pm(v), LinkQualityEstimator::kMaxLossPm);  // ceiling
  for (int i = 0; i < 30; ++i) est.observe(v, true);
  EXPECT_EQ(est.loss_pm(v), LinkQualityEstimator::kMinLossPm);  // floor
  EXPECT_EQ(est.max_loss_pm(), LinkQualityEstimator::kMinLossPm);
}

TEST(LinkQuality, SuspicionUsesRunStartSnapshot) {
  using LQ = LinkQualityEstimator;
  LQ est;
  const NodeId v{5};
  est.observe(v, true);
  EXPECT_EQ(est.suspicion_milli(v), 0u);
  est.observe(v, false);
  const std::uint32_t clean = LQ::surprise_milli(LQ::kMinLossPm);
  EXPECT_EQ(est.suspicion_milli(v), clean);
  est.observe(v, false);
  // The run's own misses inflated the live EWMA but NOT the snapshot the
  // suspicion is computed against — the product grows without bound instead
  // of plateauing (a long silence must never become self-excusing).
  EXPECT_EQ(est.suspicion_milli(v), 2 * clean);
  EXPECT_GT(est.loss_pm(v), LQ::kMinLossPm);
  est.observe(v, false);
  EXPECT_EQ(est.suspicion_milli(v), 3 * clean);
  // Hearing the member ends the run and zeroes suspicion.
  est.observe(v, true);
  EXPECT_EQ(est.suspicion_milli(v), 0u);
  EXPECT_EQ(est.consecutive_missed(v), 0u);
  // A new run snapshots the now-lossier estimate: less surprise per miss.
  est.observe(v, false);
  EXPECT_LT(est.suspicion_milli(v), clean);
  EXPECT_GT(est.suspicion_milli(v), 0u);
}

TEST(LinkQuality, PendingSuspicionCountsTheUnrecordedMiss) {
  using LQ = LinkQualityEstimator;
  LQ est;
  const NodeId ch{0};
  const std::uint32_t clean = LQ::surprise_milli(LQ::kMinLossPm);
  // Never observed: one miss over a clean link (a CH silent from the moment
  // a deputy started watching still accrues).
  EXPECT_EQ(est.pending_suspicion_milli(ch), clean);
  est.observe(ch, true);
  EXPECT_EQ(est.pending_suspicion_milli(ch), clean);
  est.observe(ch, false);
  EXPECT_EQ(est.pending_suspicion_milli(ch), 2 * clean);
}

TEST(LinkQuality, ForgetAndClearDropState) {
  LinkQualityEstimator est;
  est.observe(NodeId{1}, false);
  est.observe(NodeId{2}, false);
  EXPECT_GT(est.max_loss_pm(), LinkQualityEstimator::kMinLossPm);
  est.forget(NodeId{1});
  EXPECT_EQ(est.suspicion_milli(NodeId{1}), 0u);
  est.clear();
  EXPECT_TRUE(est.empty());
  EXPECT_EQ(est.max_loss_pm(), LinkQualityEstimator::kMinLossPm);
}

std::vector<NodeId> members(std::initializer_list<std::uint32_t> ids) {
  std::vector<NodeId> out;
  for (auto id : ids) out.emplace_back(id);
  return out;
}

TEST(Detector, AccrualCleanLinkMatchesStaticLatency) {
  LinkQualityEstimator est;
  const auto expected = members({1, 2, 3, 4, 5, 6, 7});
  const RoundEvidence all = evidence_with({1, 2, 3, 4, 5, 6, 7});
  for (int epoch = 0; epoch < 3; ++epoch) {
    EXPECT_TRUE(
        detect_failed_accrual(expected, all, RuleMode::kFull, est, 1500)
            .empty());
  }
  // Member 4 crashes: over a clean link one miss scores ~2000 — declared on
  // the very first silent execution, exactly like the static rule.
  const RoundEvidence missing4 = evidence_with({1, 2, 3, 5, 6, 7});
  const auto failed =
      detect_failed_accrual(expected, missing4, RuleMode::kFull, est, 1500);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], NodeId{4});
}

TEST(Detector, AccrualLossyLinkDemandsConsecutiveMisses) {
  LinkQualityEstimator est;
  const auto expected = members({1, 2, 3, 4, 5, 6, 7});
  const RoundEvidence all = evidence_with({1, 2, 3, 4, 5, 6, 7});
  const RoundEvidence missing4 = evidence_with({1, 2, 3, 5, 6, 7});
  // Pre-train member 4's link to ~40% estimated loss. In the protocol this
  // training happens through congestion-excused executions: the gate below
  // suppresses declarations while the misses still fold into the estimate.
  for (int i = 0; i < 4; ++i) {
    est.observe(NodeId{4}, false);
    est.observe(NodeId{4}, true);
  }
  EXPECT_GT(est.loss_pm(NodeId{4}), 300u);
  // A single miss over the known-lossy link is unremarkable: the static
  // rule false-positives here, the accrual rule stays quiet.
  EXPECT_EQ(detect_failed(expected, missing4, RuleMode::kFull).size(), 1u);
  EXPECT_TRUE(
      detect_failed_accrual(expected, missing4, RuleMode::kFull, est, 1500)
          .empty());
  // Heard again: the silence run (and suspicion) resets.
  EXPECT_TRUE(
      detect_failed_accrual(expected, all, RuleMode::kFull, est, 1500)
          .empty());
  EXPECT_EQ(est.suspicion_milli(NodeId{4}), 0u);
  // Now member 4 crashes for real: suspicion accrues per silent execution
  // and crosses the threshold within a handful of executions.
  int declared_after = -1;
  for (int epoch = 1; epoch <= 8; ++epoch) {
    const auto failed =
        detect_failed_accrual(expected, missing4, RuleMode::kFull, est, 1500);
    if (!failed.empty()) {
      EXPECT_EQ(failed[0], NodeId{4});
      declared_after = epoch;
      break;
    }
  }
  EXPECT_GE(declared_after, 3);  // strictly more patient than static
  EXPECT_LE(declared_after, 6);  // but still bounded
}

TEST(Detector, CongestionGateSuppressesClusterWideSilence) {
  LinkQualityEstimator est;
  const auto expected = members({1, 2, 3, 4, 5, 6, 7, 8});
  const RoundEvidence all = evidence_with({1, 2, 3, 4, 5, 6, 7, 8});
  for (int epoch = 0; epoch < 2; ++epoch) {
    (void)detect_failed_accrual(expected, all, RuleMode::kFull, est, 1500);
  }
  // An interference burst silences half the cluster at once. The static
  // rule declares all four immediately; the congestion gate recognises the
  // cluster-wide pattern and declares nobody.
  const RoundEvidence burst = evidence_with({1, 2, 3, 4});
  EXPECT_EQ(detect_failed(expected, burst, RuleMode::kFull).size(), 4u);
  EXPECT_TRUE(
      detect_failed_accrual(expected, burst, RuleMode::kFull, est, 1500)
          .empty());
  EXPECT_TRUE(
      detect_failed_accrual(expected, burst, RuleMode::kFull, est, 1500)
          .empty());
  // The burst clears: everyone is heard again, no one was ever declared,
  // and suspicion resets.
  EXPECT_TRUE(
      detect_failed_accrual(expected, all, RuleMode::kFull, est, 1500)
          .empty());
  EXPECT_EQ(est.suspicion_milli(NodeId{5}), 0u);
}

TEST(Detector, CongestionGateStillDeclaresMassCrashWithinBoundedEpochs) {
  LinkQualityEstimator est;
  const auto expected = members({1, 2, 3, 4, 5, 6, 7, 8});
  const RoundEvidence all = evidence_with({1, 2, 3, 4, 5, 6, 7, 8});
  (void)detect_failed_accrual(expected, all, RuleMode::kFull, est, 1500);
  // Half the cluster genuinely crashes. The silence pattern is
  // indistinguishable from interference at first, but the floored
  // congestion surprisal guarantees a declaration within
  // threshold / kCongestionSurpriseFloorMilli = 4 executions.
  const RoundEvidence crashed = evidence_with({1, 2, 3, 4});
  int declared_after = -1;
  for (int epoch = 1; epoch <= 8; ++epoch) {
    const auto failed =
        detect_failed_accrual(expected, crashed, RuleMode::kFull, est, 1500);
    if (!failed.empty()) {
      EXPECT_EQ(failed.size(), 4u);
      declared_after = epoch;
      break;
    }
  }
  EXPECT_EQ(declared_after, 4);
}

TEST(Detector, IsolatedCrashNeverTripsTheCongestionGate) {
  // One silent member of eight is a crash signature, not interference: the
  // gate requires both two silent members and a quarter of the roster.
  LinkQualityEstimator est;
  const auto expected = members({1, 2, 3, 4, 5, 6, 7, 8});
  const RoundEvidence all = evidence_with({1, 2, 3, 4, 5, 6, 7, 8});
  (void)detect_failed_accrual(expected, all, RuleMode::kFull, est, 1500);
  const RoundEvidence missing3 = evidence_with({1, 2, 4, 5, 6, 7, 8});
  const auto failed =
      detect_failed_accrual(expected, missing3, RuleMode::kFull, est, 1500);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], NodeId{3});
}

}  // namespace
}  // namespace cfds
