// End-to-end integration: deploy a field, form clusters, crash nodes, and
// check the paper's two properties hold deterministically at p = 0 and
// probabilistically under loss.
//
// Density matters: the paper's application model (Section 2.1) assumes 50 to
// 100 hosts per cluster, and features like multiple gateway candidates (F1)
// and post-takeover DCH reachability only hold "with high probability" at
// such densities. The main tests therefore run at paper-like density
// (~50 nodes per transmission disk); one test documents the graceful
// degradation in the sparse regime the paper does not target.

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace cfds {
namespace {

ScenarioConfig dense_config() {
  ScenarioConfig config;
  config.width = 700.0;
  config.height = 450.0;
  config.node_count = 500;  // ~50 nodes per 100 m transmission disk
  config.range = 100.0;
  config.loss_p = 0.0;
  config.seed = 7;
  return config;
}

NodeId pick_member(Scenario& scenario, Role role) {
  for (MembershipView* view : scenario.views()) {
    if (view->role() == role) return view->self();
  }
  return NodeId::invalid();
}

TEST(Integration, CentralizedSetupCoversTheField) {
  Scenario scenario(dense_config());
  scenario.setup();
  EXPECT_GT(scenario.cluster_count(), 2u);
  EXPECT_GT(scenario.affiliation_rate(), 0.99);
}

TEST(Integration, NoFalseDetectionsWithoutLossOrCrashes) {
  Scenario scenario(dense_config());
  scenario.setup();
  scenario.run_epochs(3);
  EXPECT_EQ(scenario.metrics().detections().size(), 0u);
}

TEST(Integration, CrashDetectedAndKnownEverywhereAtPZero) {
  Scenario scenario(dense_config());
  scenario.setup();
  scenario.run_epochs(1);

  const NodeId victim = pick_member(scenario, Role::kOrdinaryMember);
  ASSERT_TRUE(victim.is_valid());
  scenario.network().crash(victim);
  scenario.run_epochs(3);  // detection + backbone propagation

  const auto first = scenario.metrics().first_detection(victim);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->suspect_was_alive);
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);

  // Completeness: every operational affiliated node knows.
  EXPECT_DOUBLE_EQ(
      knowledge_coverage(scenario.fds(), scenario.network(), victim), 1.0);
}

TEST(Integration, ClusterheadCrashTriggersDeputyTakeover) {
  Scenario scenario(dense_config());
  scenario.setup();
  scenario.run_epochs(1);

  NodeId ch = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead() && view->cluster()->population() >= 20) {
      ch = view->self();
      break;
    }
  }
  ASSERT_TRUE(ch.is_valid());

  bool takeover_fired = false;
  scenario.fds().hooks().on_takeover =
      [&](NodeId, NodeId old_ch, std::uint64_t) {
        if (old_ch == ch) takeover_fired = true;
      };

  scenario.network().crash(ch);
  scenario.run_epochs(4);

  EXPECT_TRUE(takeover_fired);
  const auto first = scenario.metrics().first_detection(ch);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->by_deputy);
  // The DCH's range may genuinely not cover every member (Figure 2(a)):
  // completeness after a CH crash is probabilistic even without loss, but at
  // paper density it should be total or nearly so.
  EXPECT_GE(knowledge_coverage(scenario.fds(), scenario.network(), ch), 0.98);
}

TEST(Integration, SurvivesModerateLoss) {
  ScenarioConfig config = dense_config();
  config.loss_p = 0.15;
  config.seed = 21;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  const NodeId victim = pick_member(scenario, Role::kOrdinaryMember);
  ASSERT_TRUE(victim.is_valid());
  scenario.network().crash(victim);
  scenario.run_epochs(5);

  ASSERT_TRUE(scenario.metrics().first_detection(victim).has_value());
  EXPECT_GT(knowledge_coverage(scenario.fds(), scenario.network(), victim),
            0.95);
}

TEST(Integration, DistributedFormationAlsoSupportsDetection) {
  ScenarioConfig config = dense_config();
  config.node_count = 400;
  config.distributed_formation = true;
  Scenario scenario(config);
  scenario.setup();
  EXPECT_GT(scenario.affiliation_rate(), 0.99);
  scenario.run_epochs(1);

  const NodeId victim = pick_member(scenario, Role::kOrdinaryMember);
  ASSERT_TRUE(victim.is_valid());
  scenario.network().crash(victim);
  scenario.run_epochs(4);

  ASSERT_TRUE(scenario.metrics().first_detection(victim).has_value());
  EXPECT_GE(knowledge_coverage(scenario.fds(), scenario.network(), victim),
            0.99);
}

// The sparse regime: with only ~10 nodes per disk, one-hop gateway
// candidates thin out and the backbone can partition — the paper's F1
// guarantee is explicitly probabilistic and density-dependent. The service
// must still detect locally and cover most of the network.
TEST(Integration, SparseRegimeDegradesGracefully) {
  ScenarioConfig config;
  config.width = 900.0;
  config.height = 600.0;
  config.node_count = 180;
  config.loss_p = 0.0;
  config.seed = 7;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  const NodeId victim = pick_member(scenario, Role::kOrdinaryMember);
  ASSERT_TRUE(victim.is_valid());
  scenario.network().crash(victim);
  scenario.run_epochs(4);

  ASSERT_TRUE(scenario.metrics().first_detection(victim).has_value());
  EXPECT_EQ(scenario.metrics().false_detections(), 0u);
  EXPECT_GT(knowledge_coverage(scenario.fds(), scenario.network(), victim),
            0.7);
}

}  // namespace
}  // namespace cfds
