// Analytic measures (Section 5): closed forms vs the paper's double sums,
// and the quantitative statements the paper makes about Figures 5-7.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/figures.h"
#include "common/geometry.h"

namespace cfds::analysis {
namespace {

class FigureGrid : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  [[nodiscard]] double p() const { return sweep_p(std::get<0>(GetParam())); }
  [[nodiscard]] int n() const { return std::get<1>(GetParam()); }
};

TEST_P(FigureGrid, Fig5ClosedFormMatchesPaperSum) {
  const double closed = false_detection_upper_bound(p(), n());
  const double sum = false_detection_upper_bound_sum(p(), n());
  EXPECT_NEAR(std::log(sum), std::log(closed), 1e-9);
}

TEST_P(FigureGrid, Fig6ClosedFormMatchesPaperSum) {
  const double closed = false_detection_on_ch(p(), n());
  const double sum = false_detection_on_ch_sum(p(), n());
  EXPECT_NEAR(std::log(sum), std::log(closed), 1e-9);
}

TEST_P(FigureGrid, Fig7ClosedFormMatchesPaperSum) {
  const double closed = incompleteness_upper_bound(p(), n());
  const double sum = incompleteness_upper_bound_sum(p(), n());
  EXPECT_NEAR(std::log(sum), std::log(closed), 1e-9);
}

TEST_P(FigureGrid, MoreNodesNeverHurt) {
  // All three measures decrease in N for fixed p (more redundancy).
  EXPECT_LE(false_detection_upper_bound(p(), n() + 25),
            false_detection_upper_bound(p(), n()));
  EXPECT_LE(false_detection_on_ch(p(), n() + 25),
            false_detection_on_ch(p(), n()));
  EXPECT_LE(incompleteness_upper_bound(p(), n() + 25),
            incompleteness_upper_bound(p(), n()));
}

TEST_P(FigureGrid, MeasuresAreProbabilities) {
  for (double value :
       {false_detection_upper_bound(p(), n()), false_detection_on_ch(p(), n()),
        incompleteness_upper_bound(p(), n())}) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FigureGrid,
    ::testing::Combine(::testing::Range(0, sweep_points()),
                       ::testing::Values(50, 75, 100)));

TEST(Figures, WorstCaseQMatchesLensGeometry) {
  // q = An/Au with An the equal-radius lens at distance R.
  const double r = 100.0;
  const double q_geo = worst_case_overlap_area(r) / (M_PI * r * r);
  EXPECT_NEAR(worst_case_q(), q_geo, 1e-12);
  EXPECT_NEAR(worst_case_q(), 2.0 / 3.0 - std::sqrt(3.0) / (2.0 * M_PI),
              1e-15);
}

TEST(Figures, MonotoneIncreasingInLossProbability) {
  for (int n : {50, 75, 100}) {
    for (int i = 0; i + 1 < sweep_points(); ++i) {
      const double p0 = sweep_p(i);
      const double p1 = sweep_p(i + 1);
      EXPECT_LT(false_detection_upper_bound(p0, n),
                false_detection_upper_bound(p1, n));
      EXPECT_LT(false_detection_on_ch(p0, n), false_detection_on_ch(p1, n));
      EXPECT_LT(incompleteness_upper_bound(p0, n),
                incompleteness_upper_bound(p1, n));
    }
  }
}

// The paper's explicit quantitative reading of Figure 6 (Section 5.1).
TEST(Figures, PaperStatementsAboutFig6) {
  // "below 1e-6 even when N drops to 50" at p = 0.5.
  EXPECT_LT(false_detection_on_ch(0.5, 50), 1e-6);
  // "practically negligible or extremely low when p is below 0.25".
  EXPECT_LT(false_detection_on_ch(0.25, 50), 1e-18);
  // The DCH is *less* likely to false-detect the CH than the CH is to
  // false-detect a circumference member (the paper's Section 5.1
  // comparison of Figures 5 and 6).
  for (int n : {50, 75, 100}) {
    for (int i = 0; i < sweep_points(); ++i) {
      const double p = sweep_p(i);
      EXPECT_LT(false_detection_on_ch(p, n),
                false_detection_upper_bound(p, n));
    }
  }
}

// Figure 5's visible range: top curve (N=50) stays "very reasonable";
// dense clusters reach deep suppression at small p.
TEST(Figures, PaperStatementsAboutFig5) {
  EXPECT_LT(false_detection_upper_bound(0.5, 50), 5e-3);
  EXPECT_LT(false_detection_upper_bound(0.5, 100), 5e-5);
  EXPECT_LT(false_detection_upper_bound(0.05, 100), 1e-18);
  EXPECT_GT(false_detection_upper_bound(0.05, 100), 1e-25);  // axis floor
}

// Figure 7: completeness robust against loss; greater N = smaller measure
// but steeper sensitivity to p (the paper's Section 5.2 observation).
TEST(Figures, PaperStatementsAboutFig7) {
  EXPECT_LT(incompleteness_upper_bound(0.05, 100), 1e-15);
  EXPECT_LT(incompleteness_upper_bound(0.5, 100),
            incompleteness_upper_bound(0.5, 50));
  const double ratio_n100 = incompleteness_upper_bound(0.5, 100) /
                            incompleteness_upper_bound(0.05, 100);
  const double ratio_n50 = incompleteness_upper_bound(0.5, 50) /
                           incompleteness_upper_bound(0.05, 50);
  EXPECT_GT(ratio_n100, ratio_n50);  // steeper sensitivity at larger N
}

}  // namespace
}  // namespace cfds::analysis
