// Tests for random-waypoint mobility and the FDS's re-affiliation behaviour
// under host migration (the extension Section 2.1 argues the framework
// accommodates).

#include <gtest/gtest.h>

#include "net/mobility.h"
#include "net/topology.h"
#include "sim/scenario.h"

namespace cfds {
namespace {

TEST(Mobility, NodesStayInBoundsAndAccumulateDistance) {
  NetworkConfig net_config;
  net_config.seed = 3;
  Network network(net_config, std::make_unique<PerfectLinks>());
  Rng placement(3);
  network.add_nodes(uniform_rect(40, 200.0, 150.0, placement));

  WaypointConfig config;
  config.width = 200.0;
  config.height = 150.0;
  config.min_speed_mps = 2.0;
  config.max_speed_mps = 4.0;
  config.pause = SimTime::zero();
  RandomWaypointMobility mobility(network, config, Rng(9));
  mobility.run(SimTime::zero(), SimTime::seconds(60));
  network.simulator().run_to_completion();

  for (const Node* node : network.nodes()) {
    EXPECT_GE(node->position().x, 0.0);
    EXPECT_LE(node->position().x, 200.0);
    EXPECT_GE(node->position().y, 0.0);
    EXPECT_LE(node->position().y, 150.0);
  }
  // 40 nodes * ~3 m/s * 60 s ~ 7200 m (pauses only at waypoint arrivals).
  EXPECT_GT(mobility.total_distance(), 3000.0);
  EXPECT_LT(mobility.total_distance(), 15000.0);
}

TEST(Mobility, CrashedNodesFreeze) {
  NetworkConfig net_config;
  net_config.seed = 4;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({50.0, 50.0});

  WaypointConfig config;
  config.width = 200.0;
  config.height = 150.0;
  RandomWaypointMobility mobility(network, config, Rng(11));
  network.crash(NodeId{0});
  mobility.run(SimTime::zero(), SimTime::seconds(30));
  network.simulator().run_to_completion();
  EXPECT_EQ(network.node(NodeId{0}).position(), (Vec2{50.0, 50.0}));
  EXPECT_DOUBLE_EQ(mobility.total_distance(), 0.0);
}

TEST(Mobility, PauseDelaysDeparture) {
  NetworkConfig net_config;
  net_config.seed = 5;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({10.0, 10.0});
  WaypointConfig config;
  config.width = 20.0;
  config.height = 20.0;  // waypoints arrive quickly in a tiny field
  config.min_speed_mps = 10.0;
  config.max_speed_mps = 10.0;
  config.pause = SimTime::seconds(1000);  // effectively parks after 1st leg
  RandomWaypointMobility slow(network, config, Rng(13));
  slow.run(SimTime::zero(), SimTime::seconds(20));
  network.simulator().run_to_completion();
  // Total distance bounded by the first leg (< field diagonal).
  EXPECT_LT(slow.total_distance(), 30.0);
}

TEST(Mobility, DriftingMemberReaffiliatesViaSubscription) {
  // A member walks away from its cluster into another's territory: after
  // reaffiliate_after_missed quiet epochs it unmarks and the neighbouring
  // CH admits it (F5) — no formation rerun needed.
  ScenarioConfig config;
  config.width = 600.0;
  config.height = 200.0;
  config.node_count = 180;
  config.loss_p = 0.0;
  config.seed = 17;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  // Find a member and a clusterhead far from it.
  NodeId wanderer = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      wanderer = view->self();
      break;
    }
  }
  ASSERT_TRUE(wanderer.is_valid());
  const ClusterId old_cluster =
      scenario.views()[wanderer.value()]->cluster()->id;
  NodeId far_ch = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->is_clusterhead() &&
        distance(scenario.network().node(view->self()).position(),
                 scenario.network().node(wanderer).position()) > 300.0) {
      far_ch = view->self();
    }
  }
  ASSERT_TRUE(far_ch.is_valid());

  // Teleport the wanderer next to the far CH (an extreme migration step).
  scenario.network().node(wanderer).radio().set_position(
      scenario.network().node(far_ch).position() + Vec2{5.0, 5.0});

  scenario.run_epochs(6);  // misses 3 updates, unmarks, re-subscribes

  const MembershipView& view = *scenario.views()[wanderer.value()];
  ASSERT_TRUE(view.affiliated());
  EXPECT_NE(view.cluster()->id, old_cluster);
  EXPECT_TRUE(scenario.network().node(wanderer).marked());
  // The new CH expects it now.
  bool expected_by_new_ch = false;
  for (MembershipView* v : scenario.views()) {
    if (v->is_clusterhead() && v->cluster()->id == view.cluster()->id) {
      expected_by_new_ch = v->cluster()->is_member(wanderer);
    }
  }
  EXPECT_TRUE(expected_by_new_ch);
}

TEST(Mobility, SlowMotionKeepsServiceFunctional) {
  // Pedestrian-speed drift across 12 executions: affiliation stays high and
  // a genuine crash is still detected and spread.
  ScenarioConfig config;
  config.width = 550.0;
  config.height = 400.0;
  config.node_count = 300;
  config.loss_p = 0.05;
  config.seed = 23;
  Scenario scenario(config);
  scenario.setup();

  WaypointConfig wp;
  wp.width = 550.0;
  wp.height = 400.0;
  wp.min_speed_mps = 0.5;
  wp.max_speed_mps = 1.5;
  RandomWaypointMobility mobility(scenario.network(), wp, Rng(29));
  mobility.run(SimTime::zero(), SimTime::seconds(2 * 14));

  scenario.run_epochs(6);
  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember &&
        scenario.network().node(view->self()).alive()) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);
  scenario.run_epochs(6);

  ASSERT_TRUE(scenario.metrics().first_detection(victim).has_value());
  EXPECT_GT(scenario.affiliation_rate(), 0.9);
  EXPECT_GT(knowledge_coverage(scenario.fds(), scenario.network(), victim),
            0.8);
}

}  // namespace
}  // namespace cfds
