// Fuzz target body for the FaultPlan JSONL parser, shared between the
// libFuzzer harness (fuzz_fault_plan.cpp, CFDS_FUZZ builds) and the
// no-libFuzzer corpus smoke driver (fuzz_corpus_smoke.cpp, every build).
//
// Plans arrive from outside the trust boundary (operator-edited files,
// cfds_check --plan output, bench_chaos --replay-plan), so parse_jsonl must
// reject malformed text without UB. The semantic property: anything the
// parser accepts must survive a serialize/parse round trip unchanged —
// that is what makes replayed counterexamples trustworthy.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "fault/fault_plan.h"

namespace cfds::fuzz {

inline int fault_plan_one(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto plan = fault::FaultPlan::parse_jsonl(text, &error);
  if (!plan.has_value()) return 0;
  const auto again = fault::FaultPlan::parse_jsonl(plan->to_jsonl(), &error);
  if (!again.has_value() || !(*again == *plan)) {
    std::abort();  // accepted plan lost information across the round trip
  }
  return 0;
}

}  // namespace cfds::fuzz
