// libFuzzer entry point for the wire codec. Built only under CFDS_FUZZ
// (requires Clang); see tests/fuzz/CMakeLists.txt.

#include "wire_target.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return cfds::fuzz::wire_one(data, size);
}
