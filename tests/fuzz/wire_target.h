// Fuzz target body for the binary wire codec, shared between the libFuzzer
// harness (fuzz_wire.cpp, CFDS_FUZZ builds) and the no-libFuzzer corpus
// smoke driver (fuzz_corpus_smoke.cpp, every build).
//
// decode_frame is the open attack surface: the UDP socket accepts frames
// from anyone, so decoding must be total — any byte soup yields `false`,
// never UB. On top of memory safety (libFuzzer runs under ASan) the target
// checks a semantic property: whatever decode accepts must re-encode and
// decode again — accepted frames live inside the codec's fixpoint.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "transport/wire.h"

namespace cfds::fuzz {

inline int wire_one(const std::uint8_t* data, std::size_t size) {
  wire::DecodedFrame frame;
  if (!wire::decode_frame(data, size, &frame)) return 0;
  std::vector<std::uint8_t> buf;
  if (!wire::encode_frame(frame.sender, frame.intended, *frame.payload,
                          &buf)) {
    std::abort();  // decoded a kind the encoder disowns
  }
  wire::DecodedFrame again;
  if (!wire::decode_frame(buf.data(), buf.size(), &again)) {
    std::abort();  // re-encoded frame no longer parses
  }
  if (again.sender != frame.sender || again.intended != frame.intended) {
    std::abort();  // addressing mutated across the round trip
  }
  return 0;
}

}  // namespace cfds::fuzz
