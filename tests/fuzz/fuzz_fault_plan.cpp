// libFuzzer entry point for the FaultPlan JSONL parser. Built only under
// CFDS_FUZZ (requires Clang); see tests/fuzz/CMakeLists.txt.

#include "fault_plan_target.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return cfds::fuzz::fault_plan_one(data, size);
}
