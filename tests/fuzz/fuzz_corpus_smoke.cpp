// Corpus smoke driver: feeds every committed corpus file through the fuzz
// target bodies without libFuzzer, so the round-trip properties and the
// corpus itself stay exercised on toolchains that cannot build the real
// harnesses (the default GCC build). Runs in ctest as `fuzz_corpus_smoke`.
//
// Usage: fuzz_corpus_smoke <corpus-dir>...
//   *.bin   -> wire codec target
//   *.jsonl -> FaultPlan parser target
// Exits nonzero when a directory is missing, unreadable, or contributes no
// files — an empty corpus would make the smoke test vacuous.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault_plan_target.h"
#include "wire_target.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>...\n", argv[0]);
    return 2;
  }
  int wire_files = 0;
  int plan_files = 0;
  for (int a = 1; a < argc; ++a) {
    const fs::path dir(argv[a]);
    if (!fs::is_directory(dir)) {
      std::fprintf(stderr, "fuzz_corpus_smoke: not a directory: %s\n",
                   argv[a]);
      return 1;
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    int fed = 0;
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string bytes = buffer.str();
      const auto* data =
          reinterpret_cast<const std::uint8_t*>(bytes.data());
      const std::string ext = file.extension().string();
      if (ext == ".bin") {
        cfds::fuzz::wire_one(data, bytes.size());
        ++wire_files;
        ++fed;
      } else if (ext == ".jsonl") {
        cfds::fuzz::fault_plan_one(data, bytes.size());
        ++plan_files;
        ++fed;
      }
    }
    if (fed == 0) {
      std::fprintf(stderr,
                   "fuzz_corpus_smoke: no corpus files (*.bin, *.jsonl) "
                   "under %s\n",
                   argv[a]);
      return 1;
    }
  }
  std::printf("fuzz_corpus_smoke: ok (%d wire frames, %d fault plans)\n",
              wire_files, plan_files);
  return 0;
}
