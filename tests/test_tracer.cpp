// Frame-mix conservation tests: the tracer lets us assert exactly what one
// FDS execution puts on the air.

#include <gtest/gtest.h>

#include "radio/tracer.h"
#include "sim/scenario.h"

namespace cfds {
namespace {

TEST(Tracer, QuietEpochFrameMixIsExact) {
  ScenarioConfig config;
  config.width = 450.0;
  config.height = 300.0;
  config.node_count = 150;
  config.loss_p = 0.0;
  config.seed = 37;
  Scenario scenario(config);
  scenario.setup();

  FrameTracer tracer;
  tracer.attach(scenario.network().channel());
  scenario.run_epochs(1);

  std::size_t affiliated = 0;
  for (MembershipView* view : scenario.views()) {
    if (view->affiliated()) ++affiliated;
  }
  std::size_t clusterheads = scenario.cluster_count();

  // Every alive node heartbeats; every affiliated node sends one digest;
  // every CH broadcasts one update. Nothing else at p = 0 with no failures.
  EXPECT_EQ(tracer.frames_of("heartbeat"), config.node_count);
  EXPECT_EQ(tracer.frames_of("digest"), affiliated);
  EXPECT_EQ(tracer.frames_of("update"), clusterheads);
  EXPECT_EQ(tracer.frames_of("upd-req"), 0u);
  EXPECT_EQ(tracer.frames_of("report"), 0u);
  EXPECT_EQ(tracer.total_frames(),
            config.node_count + affiliated + clusterheads);
}

TEST(Tracer, CrashEpochAddsReportTraffic) {
  ScenarioConfig config;
  config.width = 450.0;
  config.height = 300.0;
  config.node_count = 150;
  config.loss_p = 0.0;
  config.seed = 37;
  Scenario scenario(config);
  scenario.setup();
  scenario.run_epochs(1);

  NodeId victim = NodeId::invalid();
  for (MembershipView* view : scenario.views()) {
    if (view->role() == Role::kOrdinaryMember) {
      victim = view->self();
      break;
    }
  }
  scenario.network().crash(victim);

  FrameTracer tracer;
  tracer.attach(scenario.network().channel());
  scenario.run_epochs(1);

  EXPECT_GT(tracer.frames_of("report"), 0u);  // backbone forwarding happened
  // Relay updates: at least one per cluster other than the victim's.
  EXPECT_GE(tracer.frames_of("update"), scenario.cluster_count());
}

TEST(Tracer, LogKeepsMostRecentFrames) {
  ScenarioConfig config;
  config.width = 300.0;
  config.height = 200.0;
  config.node_count = 60;
  config.loss_p = 0.0;
  config.seed = 41;
  Scenario scenario(config);
  scenario.setup();

  FrameTracer tracer;
  tracer.attach(scenario.network().channel(), /*log_depth=*/16);
  scenario.run_epochs(1);

  EXPECT_EQ(tracer.log().size(), 16u);
  // The newest entries are the final update broadcasts of the epoch.
  EXPECT_GT(tracer.total_frames(), 16u);
  SimTime previous = SimTime::zero();
  for (const FrameTracer::LoggedFrame& frame : tracer.log()) {
    EXPECT_GE(frame.when, previous);
    previous = frame.when;
    EXPECT_FALSE(frame.kind.empty());
  }
}

TEST(Tracer, ResetClearsEverything) {
  FrameTracer tracer;
  tracer.reset();
  EXPECT_EQ(tracer.total_frames(), 0u);
  EXPECT_TRUE(tracer.by_kind().empty());
  EXPECT_EQ(tracer.frames_of("anything"), 0u);
}

}  // namespace
}  // namespace cfds
