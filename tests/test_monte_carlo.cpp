// Monte-Carlo cross-validation of the analytic measures (Section 5):
// the semantic estimators and the full protocol stack must reproduce the
// closed forms wherever the probabilities are large enough to sample.

#include <gtest/gtest.h>

#include "analysis/figures.h"
#include "sim/fast_mc.h"
#include "sim/single_cluster.h"

namespace cfds {
namespace {

class FastMcGrid : public ::testing::TestWithParam<std::tuple<double, int>> {
 protected:
  [[nodiscard]] double p() const { return std::get<0>(GetParam()); }
  [[nodiscard]] int n() const { return std::get<1>(GetParam()); }
  [[nodiscard]] FastMcConfig config() const {
    FastMcConfig c;
    c.p = p();
    c.n = n();
    return c;
  }
};

TEST_P(FastMcGrid, Fig5SemanticMcMatchesAnalytic) {
  Rng rng(101);
  const auto estimate = mc_false_detection(config(), 400000, rng);
  EXPECT_TRUE(estimate.consistent_with(
      analysis::false_detection_upper_bound(p(), n())))
      << estimate.estimate() << " vs "
      << analysis::false_detection_upper_bound(p(), n());
}

TEST_P(FastMcGrid, Fig7SemanticMcMatchesAnalytic) {
  Rng rng(103);
  const auto estimate = mc_incompleteness(config(), 400000, rng);
  EXPECT_TRUE(estimate.consistent_with(
      analysis::incompleteness_upper_bound(p(), n())))
      << estimate.estimate() << " vs "
      << analysis::incompleteness_upper_bound(p(), n());
}

INSTANTIATE_TEST_SUITE_P(HighLossRegion, FastMcGrid,
                         ::testing::Combine(::testing::Values(0.3, 0.4, 0.5),
                                            ::testing::Values(20, 50)));

TEST(FastMc, Fig6SemanticMcMatchesAnalyticAtSampleablePoint) {
  // Figure 6 drops below sampling reach except at small N / large p.
  Rng rng(107);
  FastMcConfig config;
  config.p = 0.5;
  config.n = 12;
  const auto estimate = mc_false_detection_on_ch(config, 2000000, rng);
  EXPECT_TRUE(estimate.consistent_with(
      analysis::false_detection_on_ch(0.5, 12)))
      << estimate.estimate();
}

TEST(FastMc, AblationOrderingHolds) {
  // Removing redundancy can only hurt: heartbeat-only >= no-spatial >= full.
  Rng rng(109);
  FastMcConfig full;
  full.p = 0.4;
  full.n = 30;
  FastMcConfig no_spatial = full;
  no_spatial.rule_mode = RuleMode::kNoSpatial;
  FastMcConfig hb_only = full;
  hb_only.rule_mode = RuleMode::kHeartbeatOnly;

  const double p_full = mc_false_detection(full, 300000, rng).estimate();
  const double p_ns = mc_false_detection(no_spatial, 300000, rng).estimate();
  const double p_hb = mc_false_detection(hb_only, 300000, rng).estimate();
  EXPECT_LT(p_full, p_ns);
  EXPECT_LT(p_ns, p_hb);
  // And the ablated modes match their own closed forms: p^2 and p.
  EXPECT_NEAR(p_ns, 0.4 * 0.4, 0.005);
  EXPECT_NEAR(p_hb, 0.4, 0.01);
}

TEST(FastMc, PeerForwardingAblation) {
  Rng rng(111);
  FastMcConfig with;
  with.p = 0.4;
  with.n = 30;
  FastMcConfig without = with;
  without.peer_forwarding = false;
  const double p_with = mc_incompleteness(with, 300000, rng).estimate();
  const double p_without = mc_incompleteness(without, 300000, rng).estimate();
  EXPECT_LT(p_with, p_without);
  EXPECT_NEAR(p_without, 0.4, 0.01);  // degenerates to the raw loss rate
}

// Full protocol stack: one event-driven FDS execution per trial.
TEST(FullStackMc, Fig5ProtocolMatchesAnalytic) {
  SingleClusterConfig config;
  config.n = 20;
  config.p = 0.5;
  config.seed = 51;
  config.num_deputies = 0;
  SingleClusterExperiment experiment(config);
  const auto estimate = experiment.run_false_detection(12000);
  EXPECT_TRUE(estimate.consistent_with(
      analysis::false_detection_upper_bound(0.5, 20)))
      << estimate.estimate();
}

TEST(FullStackMc, Fig6ProtocolMatchesAnalytic) {
  SingleClusterConfig config;
  config.n = 12;
  config.p = 0.5;
  config.seed = 53;
  config.pin_edge_node = false;
  config.pin_deputy_center = true;
  SingleClusterExperiment experiment(config);
  const auto estimate = experiment.run_false_detection_on_ch(20000);
  EXPECT_TRUE(estimate.consistent_with(
      analysis::false_detection_on_ch(0.5, 12)))
      << estimate.estimate();
}

TEST(FullStackMc, Fig7ProtocolRespectsUpperBound) {
  // The implementation's progressive peer forwarding cascades (a requester
  // rescued early can rescue others), so the measured incompleteness sits
  // slightly BELOW the paper's closed-form upper bound — never above it.
  SingleClusterConfig config;
  config.n = 20;
  config.p = 0.5;
  config.seed = 57;
  config.num_deputies = 0;
  SingleClusterExperiment experiment(config);
  const auto estimate = experiment.run_incompleteness(12000);
  const double bound = analysis::incompleteness_upper_bound(0.5, 20);
  EXPECT_LE(estimate.estimate(), bound + estimate.ci99());
  EXPECT_GE(estimate.estimate(), 0.8 * bound - estimate.ci99());
}

TEST(FullStackMc, NoLossMeansNoFalseDetectionAndNoIncompleteness) {
  SingleClusterConfig config;
  config.n = 30;
  config.p = 0.0;
  config.seed = 59;
  SingleClusterExperiment experiment(config);
  EXPECT_EQ(experiment.run_false_detection(200).successes(), 0);
  EXPECT_EQ(experiment.run_incompleteness(200).successes(), 0);
}

}  // namespace
}  // namespace cfds
