// Behavioural tests for the FDS agent machinery on a controlled cluster:
// round timing, digests, updates, DCH takeover, peer forwarding, admission.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cluster/directory.h"
#include "fds/agent.h"
#include "net/topology.h"

namespace cfds {
namespace {

/// A hand-built cluster: CH 0 at the origin, members on a small ring, one
/// far member reachable by the CH but not by everyone.
class FdsFixture : public ::testing::Test {
 protected:
  static constexpr int kN = 8;

  static FdsConfig default_config() {
    FdsConfig config;
    config.heartbeat_interval = SimTime::millis(800);
    return config;
  }

  FdsFixture() : FdsFixture(default_config()) {}

  explicit FdsFixture(double loss_p)
      : FdsFixture(default_config(),
                   loss_p == 0.0
                       ? std::unique_ptr<LossModel>(
                             std::make_unique<PerfectLinks>())
                       : std::unique_ptr<LossModel>(
                             std::make_unique<BernoulliLoss>(loss_p))) {}

  explicit FdsFixture(FdsConfig config)
      : FdsFixture(std::move(config), std::make_unique<PerfectLinks>()) {}

  FdsFixture(FdsConfig config, std::unique_ptr<LossModel> loss) {
    NetworkConfig net_config;
    net_config.seed = 13;
    network_ = std::make_unique<Network>(net_config, std::move(loss));
    network_->add_node({0.0, 0.0});  // CH
    for (int i = 1; i < kN; ++i) {
      const double angle = 2.0 * M_PI * double(i) / double(kN - 1);
      network_->add_node({60.0 * std::cos(angle), 60.0 * std::sin(angle)});
    }
    for (int i = 0; i < kN; ++i) {
      views_.push_back(std::make_unique<MembershipView>(
          NodeId{std::uint32_t(i)}));
    }
    fds_ = std::make_unique<FdsService>(*network_, view_ptrs(), config);
    ClusterDirectory::single_cluster(kN).install(*network_, view_ptrs_);
  }

  std::vector<MembershipView*> view_ptrs() {
    view_ptrs_.clear();
    for (auto& v : views_) view_ptrs_.push_back(v.get());
    return view_ptrs_;
  }

  void run_epoch(std::uint64_t epoch) {
    const SimTime start = network_->simulator().now();
    fds_->schedule_epoch(epoch, start);
    network_->simulator().run_until(start + SimTime::millis(800));
  }

  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<MembershipView>> views_;
  std::vector<MembershipView*> view_ptrs_;
  std::unique_ptr<FdsService> fds_;
};

TEST_F(FdsFixture, QuietEpochProducesEmptyUpdateEverywhereReceived) {
  int updates_applied = 0;
  fds_->hooks().on_update_applied = [&](NodeId, const HealthUpdatePayload& u) {
    EXPECT_TRUE(u.newly_failed.empty());
    EXPECT_FALSE(u.takeover);
    ++updates_applied;
  };
  run_epoch(0);
  EXPECT_EQ(updates_applied, kN - 1);  // every member, not the CH itself
  for (FdsAgent* agent : fds_->agents()) {
    EXPECT_TRUE(agent->got_scheduled_update()) << agent->id();
  }
}

TEST_F(FdsFixture, CrashedMemberDetectedInOneExecution) {
  network_->crash(NodeId{5});
  std::vector<NodeId> detected;
  fds_->hooks().on_detection = [&](NodeId decider, std::uint64_t,
                                   const std::vector<NodeId>& failed,
                                   bool by_deputy) {
    EXPECT_EQ(decider, NodeId{0});
    EXPECT_FALSE(by_deputy);
    detected = failed;
  };
  run_epoch(0);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], NodeId{5});
  // Every surviving member learned and pruned its view.
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->id() == NodeId{5}) continue;
    EXPECT_TRUE(agent->log().knows(NodeId{5}));
    EXPECT_FALSE(agent->view().cluster()->is_member(NodeId{5}));
  }
}

TEST_F(FdsFixture, DetectedNodeIsNotReDetected) {
  network_->crash(NodeId{5});
  int detections = 0;
  fds_->hooks().on_detection = [&](NodeId, std::uint64_t,
                                   const std::vector<NodeId>&,
                                   bool) { ++detections; };
  run_epoch(0);
  run_epoch(1);
  run_epoch(2);
  EXPECT_EQ(detections, 1);  // removed from the expected set after epoch 0
}

TEST_F(FdsFixture, ClusterheadCrashYieldsTakeoverByPrimaryDeputy) {
  network_->crash(NodeId{0});
  NodeId takeover_by = NodeId::invalid();
  fds_->hooks().on_takeover = [&](NodeId deputy, NodeId old_ch,
                                  std::uint64_t) {
    takeover_by = deputy;
    EXPECT_EQ(old_ch, NodeId{0});
  };
  run_epoch(0);
  EXPECT_EQ(takeover_by, NodeId{1});  // highest-ranked DCH
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->id() == NodeId{0}) continue;
    EXPECT_EQ(agent->view().cluster()->clusterhead, NodeId{1}) << agent->id();
    EXPECT_TRUE(agent->log().knows(NodeId{0}));
  }
  // The new CH runs subsequent executions: crash another member.
  network_->crash(NodeId{6});
  bool detected_by_new_ch = false;
  fds_->hooks().on_detection = [&](NodeId decider, std::uint64_t,
                                   const std::vector<NodeId>& failed, bool) {
    if (decider == NodeId{1} && failed == std::vector<NodeId>{NodeId{6}}) {
      detected_by_new_ch = true;
    }
  };
  run_epoch(1);
  EXPECT_TRUE(detected_by_new_ch);
}

TEST_F(FdsFixture, SecondDeputyTakesOverWhenChAndFirstDeputyDie) {
  // Feature F2's ranked redundancy: CH (0) and the primary deputy (1) die
  // in the same interval; the rank-2 deputy (2) must still take over.
  network_->crash(NodeId{0});
  network_->crash(NodeId{1});
  NodeId takeover_by = NodeId::invalid();
  fds_->hooks().on_takeover = [&](NodeId deputy, NodeId, std::uint64_t) {
    takeover_by = deputy;
  };
  run_epoch(0);
  EXPECT_EQ(takeover_by, NodeId{2});
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->id() == NodeId{0} || agent->id() == NodeId{1}) continue;
    EXPECT_EQ(agent->view().cluster()->clusterhead, NodeId{2}) << agent->id();
    EXPECT_TRUE(agent->log().knows(NodeId{0}));
  }
  // The dead primary deputy is detected by the new CH next epoch.
  run_epoch(1);
  FdsAgent& new_ch = fds_->agent_for(NodeId{2});
  EXPECT_TRUE(new_ch.log().knows(NodeId{1}));
}

TEST_F(FdsFixture, LowerDeputyStandsDownWhenPrimaryActs) {
  network_->crash(NodeId{0});
  std::vector<NodeId> takeovers;
  fds_->hooks().on_takeover = [&](NodeId deputy, NodeId, std::uint64_t) {
    takeovers.push_back(deputy);
  };
  run_epoch(0);
  // Exactly one takeover, by the primary; rank 2 heard the announcement.
  ASSERT_EQ(takeovers.size(), 1u);
  EXPECT_EQ(takeovers[0], NodeId{1});
}

TEST(FdsAdmission, UnmarkedHeartbeatTriggersAdmission) {
  // A replenishment node lands inside a cluster, unmarked: its heartbeat is
  // a membership subscription (feature F5) and the CH admits it.
  NetworkConfig net_config;
  net_config.seed = 13;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({0.0, 0.0});  // CH
  for (int i = 1; i < 8; ++i) {
    const double angle = 2.0 * M_PI * double(i) / 7.0;
    network.add_node({60.0 * std::cos(angle), 60.0 * std::sin(angle)});
  }
  Node& newcomer = network.add_node({30.0, 10.0});  // NID 8, unmarked

  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < 9; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  FdsConfig config;
  config.heartbeat_interval = SimTime::millis(800);
  FdsService fds(network, ptrs, config);
  // The installed cluster covers only nodes 0..7.
  ClusterDirectory::single_cluster(8).install(network, ptrs);

  EXPECT_FALSE(newcomer.marked());
  fds.schedule_epoch(0, SimTime::zero());
  network.simulator().run_until(SimTime::millis(800));

  EXPECT_TRUE(newcomer.marked());
  FdsAgent& agent = fds.agent_for(newcomer.id());
  ASSERT_TRUE(agent.view().affiliated());
  EXPECT_EQ(agent.view().cluster()->clusterhead, NodeId{0});
  EXPECT_TRUE(views[0]->cluster()->is_member(newcomer.id()));
}

TEST_F(FdsFixture, WaitingPeriodsAreUniqueAndBounded) {
  const SimTime t_hop = SimTime::millis(100);
  std::set<std::int64_t> seen;
  for (std::uint32_t nid = 0; nid < 500; ++nid) {
    const SimTime w = peer_waiting_period(NodeId{nid}, 1.0, t_hop);
    EXPECT_GT(w.as_micros(), 0);
    EXPECT_LT(w, t_hop);
    seen.insert(w.as_micros());
  }
  // NID-derived spreading: collisions only via the microsecond rounding of
  // the timer (birthday bound ~1-2 for 500 draws over ~92k slots).
  EXPECT_GE(seen.size(), 497u);
}

TEST_F(FdsFixture, WaitingPeriodStretchesWhenEnergyDepleted) {
  const SimTime t_hop = SimTime::millis(100);
  const NodeId node{42};
  EXPECT_LT(peer_waiting_period(node, 1.0, t_hop),
            peer_waiting_period(node, 0.2, t_hop));
}

// Peer forwarding: block the direct CH->member delivery for one node by
// using a loss model that targets it, then verify the request/forward/ack
// machinery recovers the update.
class TargetedLoss final : public LossModel {
 public:
  explicit TargetedLoss(NodeId victim) : victim_(victim) {}
  bool lost(NodeId sender, Vec2, NodeId receiver, Vec2, Rng&) override {
    // Drop exactly the CH's frames to the victim (heartbeats, digests and
    // the R-3 update) — peers must fill the gap.
    return sender == NodeId{0} && receiver == victim_;
  }

 private:
  NodeId victim_;
};

TEST(FdsPeerForwarding, MissedUpdateRecoveredViaRequest) {
  NetworkConfig net_config;
  net_config.seed = 31;
  const NodeId victim{4};
  Network network(net_config, std::make_unique<TargetedLoss>(victim));
  network.add_node({0.0, 0.0});
  for (int i = 1; i < 8; ++i) {
    const double angle = 2.0 * M_PI * double(i) / 7.0;
    network.add_node({50.0 * std::cos(angle), 50.0 * std::sin(angle)});
  }
  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  FdsConfig config;
  config.heartbeat_interval = SimTime::millis(800);
  FdsService fds(network, ptrs, config);
  ClusterDirectory::single_cluster(8).install(network, ptrs);

  fds.schedule_epoch(0, SimTime::zero());
  network.simulator().run_until(SimTime::millis(800));
  EXPECT_TRUE(fds.agent_for(victim).got_scheduled_update());

  // And with peer forwarding disabled, the victim stays dark.
  FdsConfig no_pf = config;
  no_pf.peer_forwarding = false;
  Network network2(net_config, std::make_unique<TargetedLoss>(victim));
  network2.add_node({0.0, 0.0});
  for (int i = 1; i < 8; ++i) {
    const double angle = 2.0 * M_PI * double(i) / 7.0;
    network2.add_node({50.0 * std::cos(angle), 50.0 * std::sin(angle)});
  }
  std::vector<std::unique_ptr<MembershipView>> views2;
  std::vector<MembershipView*> ptrs2;
  for (std::uint32_t i = 0; i < 8; ++i) {
    views2.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs2.push_back(views2.back().get());
  }
  FdsService fds2(network2, ptrs2, no_pf);
  ClusterDirectory::single_cluster(8).install(network2, ptrs2);
  fds2.schedule_epoch(0, SimTime::zero());
  network2.simulator().run_until(SimTime::millis(800));
  EXPECT_FALSE(fds2.agent_for(victim).got_scheduled_update());
}

// ---------------------------------------------------------------------------
// Epoch-skew tolerance edges (FdsConfig::tolerate_epoch_skew).

class SkewTolerantFixture : public FdsFixture {
 public:
  static FdsConfig config() {
    FdsConfig c = default_config();
    c.tolerate_epoch_skew = true;
    return c;
  }

 protected:
  SkewTolerantFixture() : FdsFixture(config()) {}
};

TEST_F(SkewTolerantFixture, EvidenceAgesOutInsteadOfVanishingAtTheBoundary) {
  // Under the soft boundary, epoch-0 signs of life stay valid until they age
  // past phi + Thop. A node that crashes BETWEEN epochs is therefore cleared
  // by its own stale evidence for one extra execution and declared in the
  // second — the price of not failing fast neighbours every epoch.
  run_epoch(0);
  network_->crash(NodeId{5});
  std::vector<std::pair<std::uint64_t, std::vector<NodeId>>> detections;
  fds_->hooks().on_detection = [&](NodeId, std::uint64_t epoch,
                                   const std::vector<NodeId>& failed, bool) {
    detections.emplace_back(epoch, failed);
  };
  run_epoch(1);
  EXPECT_TRUE(detections.empty());  // stale evidence still within the window
  run_epoch(2);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].first, 2u);
  EXPECT_EQ(detections[0].second, std::vector<NodeId>{NodeId{5}});
}

TEST(FdsSkew, SubscriptionHeardAfterR3CarriesIntoTheNextExecution) {
  // A newcomer whose clock runs 3*Thop ahead delivers its subscription
  // heartbeat after the CH's R-3 has already passed. A hard boundary wipes
  // the pending subscription every epoch and the newcomer is never admitted;
  // the soft boundary carries it into the next R-3.
  for (const bool tolerate : {false, true}) {
    NetworkConfig net_config;
    net_config.seed = 13;
    Network network(net_config, std::make_unique<PerfectLinks>());
    network.add_node({0.0, 0.0});
    for (int i = 1; i < 8; ++i) {
      const double angle = 2.0 * M_PI * double(i) / 7.0;
      network.add_node({60.0 * std::cos(angle), 60.0 * std::sin(angle)});
    }
    Node& newcomer = network.add_node({30.0, 10.0});  // NID 8, unmarked
    std::vector<std::unique_ptr<MembershipView>> views;
    std::vector<MembershipView*> ptrs;
    for (std::uint32_t i = 0; i < 9; ++i) {
      views.push_back(std::make_unique<MembershipView>(NodeId{i}));
      ptrs.push_back(views.back().get());
    }
    FdsConfig config;
    config.heartbeat_interval = SimTime::millis(800);
    config.tolerate_epoch_skew = tolerate;
    FdsService fds(network, ptrs, config);
    ClusterDirectory::single_cluster(8).install(network, ptrs);
    fds.set_skew_provider([&](NodeId id, std::uint64_t) {
      return id == newcomer.id() ? SimTime::millis(300) : SimTime::zero();
    });
    for (std::uint64_t e = 0; e < 3; ++e) {
      fds.schedule_epoch(e, SimTime::millis(std::int64_t(800 * e)));
    }
    network.simulator().run_until(SimTime::millis(2400));
    EXPECT_EQ(newcomer.marked(), tolerate) << "tolerate=" << tolerate;
    EXPECT_EQ(fds.agent_for(newcomer.id()).view().affiliated(), tolerate);
  }
}

/// Drops every frame SENT by the victim while muted; reception is unaffected.
class MutedVictimsLoss final : public LossModel {
 public:
  explicit MutedVictimsLoss(std::vector<NodeId> victims)
      : victims_(std::move(victims)) {}
  bool lost(NodeId sender, Vec2, NodeId, Vec2, Rng&) override {
    return muted && std::find(victims_.begin(), victims_.end(), sender) !=
                        victims_.end();
  }
  bool muted = true;

 private:
  std::vector<NodeId> victims_;
};

class FreshSelfNewsFixture : public FdsFixture {
 protected:
  FreshSelfNewsFixture()
      : FdsFixture(SkewTolerantFixture::config(),
                   std::make_unique<MutedVictimsLoss>(
                       std::vector<NodeId>{NodeId{5}})) {}
  MutedVictimsLoss& gate() {
    return static_cast<MutedVictimsLoss&>(network_->loss_model());
  }
};

TEST_F(FreshSelfNewsFixture, FreshSelfNewsForcesFullStepDownThenResubscribe) {
  // The victim's radio is mute for one epoch: the CH declares it failed and
  // the victim HEARS that fresh news about itself. Under tolerate_epoch_skew
  // it must step down fully (view dropped, unmarked) — the author already
  // dropped it from the roster, so clinging to the stale view would discard
  // any re-admission from another head as foreign.
  run_epoch(0);
  FdsAgent& victim = fds_->agent_for(NodeId{5});
  EXPECT_FALSE(network_->node(NodeId{5}).marked());
  EXPECT_FALSE(victim.view().affiliated());
  EXPECT_GE(victim.reverts()[FdsAgent::kRevertFreshSelfNews], 1u);
  // Radio heals: the next unmarked heartbeat is a subscription (F5) and the
  // victim rejoins the same cluster.
  gate().muted = false;
  run_epoch(1);
  EXPECT_TRUE(network_->node(NodeId{5}).marked());
  ASSERT_TRUE(victim.view().affiliated());
  EXPECT_EQ(victim.view().cluster()->clusterhead, NodeId{0});
  EXPECT_TRUE(
      fds_->agent_for(NodeId{0}).view().cluster()->is_member(NodeId{5}));
}

// ---------------------------------------------------------------------------
// Adaptive detection (FdsConfig::adaptive_enabled).

class AdaptiveFixture : public FdsFixture {
 public:
  static FdsConfig config() {
    FdsConfig c = default_config();
    c.adaptive_enabled = true;
    return c;
  }

 protected:
  AdaptiveFixture() : FdsFixture(config()) {}
};

TEST_F(AdaptiveFixture, CleanLinkCrashKeepsStaticLatency) {
  // Over clean links one miss scores surprise(kMinLossPm) = 2000, past the
  // default 1500 threshold: the accrual rule must not be slower than the
  // static rule where the static rule is right.
  network_->crash(NodeId{5});
  std::vector<NodeId> detected;
  std::uint64_t detected_epoch = 99;
  fds_->hooks().on_detection = [&](NodeId decider, std::uint64_t epoch,
                                   const std::vector<NodeId>& failed, bool) {
    EXPECT_EQ(decider, NodeId{0});
    detected = failed;
    detected_epoch = epoch;
  };
  run_epoch(0);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], NodeId{5});
  EXPECT_EQ(detected_epoch, 0u);
}

class AdaptiveTuneFixture : public FdsFixture {
 protected:
  AdaptiveTuneFixture()
      : FdsFixture(AdaptiveFixture::config(),
                   std::make_unique<MutedVictimsLoss>(std::vector<NodeId>{
                       NodeId{4}, NodeId{5}, NodeId{6}})) {
    gate().muted = false;  // start clean; tests flip it on
  }
  MutedVictimsLoss& gate() {
    return static_cast<MutedVictimsLoss&>(network_->loss_model());
  }
};

TEST_F(AdaptiveTuneFixture, TuneLevelRampsUpAndDownWithoutFalsePositives) {
  // Three of seven members go mute for three epochs — a cluster-wide
  // interference pattern. The congestion gate must excuse them (no
  // declarations), the CH's announced tune level must ramp up by at most one
  // per epoch while the burst lasts and back down after it clears, and
  // members must track the announcement.
  int detections = 0;
  fds_->hooks().on_detection = [&](NodeId, std::uint64_t,
                                   const std::vector<NodeId>&,
                                   bool) { ++detections; };
  std::vector<int> announced;
  fds_->hooks().on_update_applied = [&](NodeId to,
                                        const HealthUpdatePayload& u) {
    if (to == NodeId{3}) announced.push_back(int(u.tune_level));
  };
  run_epoch(0);  // clean: level 0
  gate().muted = true;
  for (std::uint64_t e = 1; e <= 3; ++e) run_epoch(e);
  gate().muted = false;
  for (std::uint64_t e = 4; e <= 9; ++e) run_epoch(e);

  EXPECT_EQ(detections, 0);  // nobody was ever declared failed
  ASSERT_GE(announced.size(), 8u);
  EXPECT_EQ(announced.front(), 0);
  for (std::size_t i = 1; i < announced.size(); ++i) {
    EXPECT_LE(std::abs(announced[i] - announced[i - 1]), 1)
        << "ramp jumped at update " << i;
  }
  EXPECT_GE(*std::max_element(announced.begin(), announced.end()), 2);
  EXPECT_LT(announced.back(),
            *std::max_element(announced.begin(), announced.end()));
  // Ramp rules: a member and its CH never disagree by more than one level.
  EXPECT_LE(std::abs(int(fds_->agent_for(NodeId{3}).tune_level()) -
                     int(fds_->agent_for(NodeId{0}).tune_level())),
            1);
  // The muted members were never shed: still marked, still on the roster.
  for (std::uint32_t nid : {4u, 5u, 6u}) {
    EXPECT_TRUE(network_->node(NodeId{nid}).marked()) << nid;
    EXPECT_TRUE(
        fds_->agent_for(NodeId{0}).view().cluster()->is_member(NodeId{nid}));
  }
}

// ---------------------------------------------------------------------------
// Checkpointed CH/DCH recovery (FdsConfig::checkpoint_enabled).

class CheckpointFixture : public FdsFixture {
 protected:
  static FdsConfig config() {
    FdsConfig c = default_config();
    c.recovery_enabled = true;
    c.checkpoint_enabled = true;
    c.checkpoint_interval_epochs = 2;
    return c;
  }
  CheckpointFixture() : FdsFixture(config()) {}
};

TEST_F(CheckpointFixture, CheckpointRetainedByHeadAndDeputiesOnly) {
  run_epoch(0);  // epoch 0 is on the interval: checkpoint broadcast at R-3
  for (FdsAgent* agent : fds_->agents()) {
    const bool holder = agent->id() == NodeId{0} ||
                        agent->id() == NodeId{1} || agent->id() == NodeId{2};
    EXPECT_EQ(agent->stable_checkpoint() != nullptr, holder) << agent->id();
  }
  const auto& cp = fds_->agent_for(NodeId{1}).stable_checkpoint();
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(cp->clusterhead, NodeId{0});
  EXPECT_EQ(cp->members.size(), std::size_t{kN - 1});
  EXPECT_EQ(cp->deputies, (std::vector<NodeId>{NodeId{1}, NodeId{2}}));
  const std::uint64_t first_seq = cp->seq;
  run_epoch(1);  // off the interval: no new checkpoint
  EXPECT_EQ(fds_->agent_for(NodeId{2}).stable_checkpoint()->seq, first_seq);
  run_epoch(2);  // on the interval again: receivers keep the larger seq
  EXPECT_GT(fds_->agent_for(NodeId{2}).stable_checkpoint()->seq, first_seq);
}

TEST_F(CheckpointFixture, RecoveredClusterheadRestoresAndReclaimsItsCluster) {
  run_epoch(0);  // checkpoint lands on 0, 1, 2
  network_->crash(NodeId{0});
  run_epoch(1);  // primary deputy takes over
  EXPECT_TRUE(fds_->agent_for(NodeId{1}).view().is_clusterhead());
  network_->recover(NodeId{0});
  FdsAgent& old_ch = fds_->agent_for(NodeId{0});
  // Warm restart from stable storage: CH role, roster and deputies are back
  // before a single frame is exchanged.
  EXPECT_TRUE(old_ch.restored_from_checkpoint());
  EXPECT_TRUE(network_->node(NodeId{0}).marked());
  ASSERT_TRUE(old_ch.view().affiliated());
  EXPECT_TRUE(old_ch.view().is_clusterhead());
  EXPECT_TRUE(old_ch.view().cluster()->is_member(NodeId{5}));
  // Reconciliation: lowest-NID head arbitration makes the interim head (1)
  // stand down; its members age out, re-subscribe, and the cluster converges
  // on the restored head with no lingering rivals.
  for (std::uint64_t e = 2; e <= 11; ++e) run_epoch(e);
  int heads = 0;
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->view().is_clusterhead()) ++heads;
  }
  EXPECT_EQ(heads, 1);
  for (FdsAgent* agent : fds_->agents()) {
    ASSERT_TRUE(agent->view().affiliated()) << agent->id();
    EXPECT_EQ(agent->view().cluster()->clusterhead, NodeId{0}) << agent->id();
  }
  EXPECT_GE(fds_->agent_for(NodeId{1}).reverts()[FdsAgent::kRevertRivalHead],
            1u);
}

TEST_F(CheckpointFixture, RecoveredDeputyRestoresAndIsReconciled) {
  run_epoch(0);  // deputies 1 and 2 retain the checkpoint
  network_->crash(NodeId{2});
  run_epoch(1);  // CH detects the dead deputy and drops it
  EXPECT_TRUE(fds_->agent_for(NodeId{0}).log().knows(NodeId{2}));
  network_->recover(NodeId{2});
  FdsAgent& deputy = fds_->agent_for(NodeId{2});
  EXPECT_TRUE(deputy.restored_from_checkpoint());
  EXPECT_TRUE(network_->node(NodeId{2}).marked());
  ASSERT_TRUE(deputy.view().affiliated());
  // The live cluster has moved on (the roster no longer lists 2): the
  // recovery rules step the deputy down and its subscription re-admits it.
  for (std::uint64_t e = 2; e <= 6; ++e) run_epoch(e);
  EXPECT_TRUE(network_->node(NodeId{2}).marked());
  ASSERT_TRUE(deputy.view().affiliated());
  EXPECT_EQ(deputy.view().cluster()->clusterhead, NodeId{0});
  EXPECT_TRUE(
      fds_->agent_for(NodeId{0}).view().cluster()->is_member(NodeId{2}));
  const auto reverts = deputy.reverts();
  EXPECT_GE(reverts[FdsAgent::kRevertStaleSelfNews] +
                reverts[FdsAgent::kRevertRosterDropped],
            1u);
}

}  // namespace
}  // namespace cfds
