// Behavioural tests for the FDS agent machinery on a controlled cluster:
// round timing, digests, updates, DCH takeover, peer forwarding, admission.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/directory.h"
#include "fds/agent.h"
#include "net/topology.h"

namespace cfds {
namespace {

/// A hand-built cluster: CH 0 at the origin, members on a small ring, one
/// far member reachable by the CH but not by everyone.
class FdsFixture : public ::testing::Test {
 protected:
  static constexpr int kN = 8;

  explicit FdsFixture(double loss_p = 0.0) {
    NetworkConfig net_config;
    net_config.seed = 13;
    network_ = std::make_unique<Network>(
        net_config, loss_p == 0.0 ? std::unique_ptr<LossModel>(
                                        std::make_unique<PerfectLinks>())
                                  : std::make_unique<BernoulliLoss>(loss_p));
    network_->add_node({0.0, 0.0});  // CH
    for (int i = 1; i < kN; ++i) {
      const double angle = 2.0 * M_PI * double(i) / double(kN - 1);
      network_->add_node({60.0 * std::cos(angle), 60.0 * std::sin(angle)});
    }
    for (int i = 0; i < kN; ++i) {
      views_.push_back(std::make_unique<MembershipView>(
          NodeId{std::uint32_t(i)}));
    }
    FdsConfig config;
    config.heartbeat_interval = SimTime::millis(800);
    fds_ = std::make_unique<FdsService>(*network_, view_ptrs(), config);
    ClusterDirectory::single_cluster(kN).install(*network_, view_ptrs_);
  }

  std::vector<MembershipView*> view_ptrs() {
    view_ptrs_.clear();
    for (auto& v : views_) view_ptrs_.push_back(v.get());
    return view_ptrs_;
  }

  void run_epoch(std::uint64_t epoch) {
    const SimTime start = network_->simulator().now();
    fds_->schedule_epoch(epoch, start);
    network_->simulator().run_until(start + SimTime::millis(800));
  }

  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<MembershipView>> views_;
  std::vector<MembershipView*> view_ptrs_;
  std::unique_ptr<FdsService> fds_;
};

TEST_F(FdsFixture, QuietEpochProducesEmptyUpdateEverywhereReceived) {
  int updates_applied = 0;
  fds_->hooks().on_update_applied = [&](NodeId, const HealthUpdatePayload& u) {
    EXPECT_TRUE(u.newly_failed.empty());
    EXPECT_FALSE(u.takeover);
    ++updates_applied;
  };
  run_epoch(0);
  EXPECT_EQ(updates_applied, kN - 1);  // every member, not the CH itself
  for (FdsAgent* agent : fds_->agents()) {
    EXPECT_TRUE(agent->got_scheduled_update()) << agent->id();
  }
}

TEST_F(FdsFixture, CrashedMemberDetectedInOneExecution) {
  network_->crash(NodeId{5});
  std::vector<NodeId> detected;
  fds_->hooks().on_detection = [&](NodeId decider, std::uint64_t,
                                   const std::vector<NodeId>& failed,
                                   bool by_deputy) {
    EXPECT_EQ(decider, NodeId{0});
    EXPECT_FALSE(by_deputy);
    detected = failed;
  };
  run_epoch(0);
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], NodeId{5});
  // Every surviving member learned and pruned its view.
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->id() == NodeId{5}) continue;
    EXPECT_TRUE(agent->log().knows(NodeId{5}));
    EXPECT_FALSE(agent->view().cluster()->is_member(NodeId{5}));
  }
}

TEST_F(FdsFixture, DetectedNodeIsNotReDetected) {
  network_->crash(NodeId{5});
  int detections = 0;
  fds_->hooks().on_detection = [&](NodeId, std::uint64_t,
                                   const std::vector<NodeId>&,
                                   bool) { ++detections; };
  run_epoch(0);
  run_epoch(1);
  run_epoch(2);
  EXPECT_EQ(detections, 1);  // removed from the expected set after epoch 0
}

TEST_F(FdsFixture, ClusterheadCrashYieldsTakeoverByPrimaryDeputy) {
  network_->crash(NodeId{0});
  NodeId takeover_by = NodeId::invalid();
  fds_->hooks().on_takeover = [&](NodeId deputy, NodeId old_ch,
                                  std::uint64_t) {
    takeover_by = deputy;
    EXPECT_EQ(old_ch, NodeId{0});
  };
  run_epoch(0);
  EXPECT_EQ(takeover_by, NodeId{1});  // highest-ranked DCH
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->id() == NodeId{0}) continue;
    EXPECT_EQ(agent->view().cluster()->clusterhead, NodeId{1}) << agent->id();
    EXPECT_TRUE(agent->log().knows(NodeId{0}));
  }
  // The new CH runs subsequent executions: crash another member.
  network_->crash(NodeId{6});
  bool detected_by_new_ch = false;
  fds_->hooks().on_detection = [&](NodeId decider, std::uint64_t,
                                   const std::vector<NodeId>& failed, bool) {
    if (decider == NodeId{1} && failed == std::vector<NodeId>{NodeId{6}}) {
      detected_by_new_ch = true;
    }
  };
  run_epoch(1);
  EXPECT_TRUE(detected_by_new_ch);
}

TEST_F(FdsFixture, SecondDeputyTakesOverWhenChAndFirstDeputyDie) {
  // Feature F2's ranked redundancy: CH (0) and the primary deputy (1) die
  // in the same interval; the rank-2 deputy (2) must still take over.
  network_->crash(NodeId{0});
  network_->crash(NodeId{1});
  NodeId takeover_by = NodeId::invalid();
  fds_->hooks().on_takeover = [&](NodeId deputy, NodeId, std::uint64_t) {
    takeover_by = deputy;
  };
  run_epoch(0);
  EXPECT_EQ(takeover_by, NodeId{2});
  for (FdsAgent* agent : fds_->agents()) {
    if (agent->id() == NodeId{0} || agent->id() == NodeId{1}) continue;
    EXPECT_EQ(agent->view().cluster()->clusterhead, NodeId{2}) << agent->id();
    EXPECT_TRUE(agent->log().knows(NodeId{0}));
  }
  // The dead primary deputy is detected by the new CH next epoch.
  run_epoch(1);
  FdsAgent& new_ch = fds_->agent_for(NodeId{2});
  EXPECT_TRUE(new_ch.log().knows(NodeId{1}));
}

TEST_F(FdsFixture, LowerDeputyStandsDownWhenPrimaryActs) {
  network_->crash(NodeId{0});
  std::vector<NodeId> takeovers;
  fds_->hooks().on_takeover = [&](NodeId deputy, NodeId, std::uint64_t) {
    takeovers.push_back(deputy);
  };
  run_epoch(0);
  // Exactly one takeover, by the primary; rank 2 heard the announcement.
  ASSERT_EQ(takeovers.size(), 1u);
  EXPECT_EQ(takeovers[0], NodeId{1});
}

TEST(FdsAdmission, UnmarkedHeartbeatTriggersAdmission) {
  // A replenishment node lands inside a cluster, unmarked: its heartbeat is
  // a membership subscription (feature F5) and the CH admits it.
  NetworkConfig net_config;
  net_config.seed = 13;
  Network network(net_config, std::make_unique<PerfectLinks>());
  network.add_node({0.0, 0.0});  // CH
  for (int i = 1; i < 8; ++i) {
    const double angle = 2.0 * M_PI * double(i) / 7.0;
    network.add_node({60.0 * std::cos(angle), 60.0 * std::sin(angle)});
  }
  Node& newcomer = network.add_node({30.0, 10.0});  // NID 8, unmarked

  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < 9; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  FdsConfig config;
  config.heartbeat_interval = SimTime::millis(800);
  FdsService fds(network, ptrs, config);
  // The installed cluster covers only nodes 0..7.
  ClusterDirectory::single_cluster(8).install(network, ptrs);

  EXPECT_FALSE(newcomer.marked());
  fds.schedule_epoch(0, SimTime::zero());
  network.simulator().run_until(SimTime::millis(800));

  EXPECT_TRUE(newcomer.marked());
  FdsAgent& agent = fds.agent_for(newcomer.id());
  ASSERT_TRUE(agent.view().affiliated());
  EXPECT_EQ(agent.view().cluster()->clusterhead, NodeId{0});
  EXPECT_TRUE(views[0]->cluster()->is_member(newcomer.id()));
}

TEST_F(FdsFixture, WaitingPeriodsAreUniqueAndBounded) {
  const SimTime t_hop = SimTime::millis(100);
  std::set<std::int64_t> seen;
  for (std::uint32_t nid = 0; nid < 500; ++nid) {
    const SimTime w = peer_waiting_period(NodeId{nid}, 1.0, t_hop);
    EXPECT_GT(w.as_micros(), 0);
    EXPECT_LT(w, t_hop);
    seen.insert(w.as_micros());
  }
  // NID-derived spreading: collisions only via the microsecond rounding of
  // the timer (birthday bound ~1-2 for 500 draws over ~92k slots).
  EXPECT_GE(seen.size(), 497u);
}

TEST_F(FdsFixture, WaitingPeriodStretchesWhenEnergyDepleted) {
  const SimTime t_hop = SimTime::millis(100);
  const NodeId node{42};
  EXPECT_LT(peer_waiting_period(node, 1.0, t_hop),
            peer_waiting_period(node, 0.2, t_hop));
}

// Peer forwarding: block the direct CH->member delivery for one node by
// using a loss model that targets it, then verify the request/forward/ack
// machinery recovers the update.
class TargetedLoss final : public LossModel {
 public:
  explicit TargetedLoss(NodeId victim) : victim_(victim) {}
  bool lost(NodeId sender, Vec2, NodeId receiver, Vec2, Rng&) override {
    // Drop exactly the CH's frames to the victim (heartbeats, digests and
    // the R-3 update) — peers must fill the gap.
    return sender == NodeId{0} && receiver == victim_;
  }

 private:
  NodeId victim_;
};

TEST(FdsPeerForwarding, MissedUpdateRecoveredViaRequest) {
  NetworkConfig net_config;
  net_config.seed = 31;
  const NodeId victim{4};
  Network network(net_config, std::make_unique<TargetedLoss>(victim));
  network.add_node({0.0, 0.0});
  for (int i = 1; i < 8; ++i) {
    const double angle = 2.0 * M_PI * double(i) / 7.0;
    network.add_node({50.0 * std::cos(angle), 50.0 * std::sin(angle)});
  }
  std::vector<std::unique_ptr<MembershipView>> views;
  std::vector<MembershipView*> ptrs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    views.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs.push_back(views.back().get());
  }
  FdsConfig config;
  config.heartbeat_interval = SimTime::millis(800);
  FdsService fds(network, ptrs, config);
  ClusterDirectory::single_cluster(8).install(network, ptrs);

  fds.schedule_epoch(0, SimTime::zero());
  network.simulator().run_until(SimTime::millis(800));
  EXPECT_TRUE(fds.agent_for(victim).got_scheduled_update());

  // And with peer forwarding disabled, the victim stays dark.
  FdsConfig no_pf = config;
  no_pf.peer_forwarding = false;
  Network network2(net_config, std::make_unique<TargetedLoss>(victim));
  network2.add_node({0.0, 0.0});
  for (int i = 1; i < 8; ++i) {
    const double angle = 2.0 * M_PI * double(i) / 7.0;
    network2.add_node({50.0 * std::cos(angle), 50.0 * std::sin(angle)});
  }
  std::vector<std::unique_ptr<MembershipView>> views2;
  std::vector<MembershipView*> ptrs2;
  for (std::uint32_t i = 0; i < 8; ++i) {
    views2.push_back(std::make_unique<MembershipView>(NodeId{i}));
    ptrs2.push_back(views2.back().get());
  }
  FdsService fds2(network2, ptrs2, no_pf);
  ClusterDirectory::single_cluster(8).install(network2, ptrs2);
  fds2.schedule_epoch(0, SimTime::zero());
  network2.simulator().run_until(SimTime::millis(800));
  EXPECT_FALSE(fds2.agent_for(victim).got_scheduled_update());
}

}  // namespace
}  // namespace cfds
