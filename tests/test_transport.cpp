// Service-mode transport/clock seam: RealTimeScheduler semantics and the
// in-process loopback medium (tests/test_wire.cpp covers the byte codec;
// the UDP endpoint is exercised end-to-end by tools/soak_harness).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "fds/messages.h"
#include "radio/payload.h"
#include "transport/loopback.h"
#include "transport/real_time.h"
#include "transport/reception.h"
#include "transport/sim_transport.h"

namespace cfds {
namespace {

[[nodiscard]] PayloadPtr heartbeat(NodeId sender, bool marked = true) {
  auto hb = std::make_shared<HeartbeatPayload>();
  hb->sender = sender;
  hb->marked = marked;
  return hb;
}

/// Collects every reception a transport dispatches.
struct Sink {
  std::vector<Reception> seen;

  static void thunk(void* ctx, const Reception& reception) {
    static_cast<Sink*>(ctx)->seen.push_back(reception);
  }
};

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// --- RealTimeScheduler ----------------------------------------------------

TEST(RealTimeScheduler, AnchorOffsetsTheClock) {
  RealTimeScheduler plain;
  RealTimeScheduler anchored(SimTime::seconds(5));
  EXPECT_GE(plain.now(), SimTime::zero());
  EXPECT_GE(anchored.now(), SimTime::seconds(5));
}

TEST(RealTimeScheduler, NowAdvancesWithWallClock) {
  RealTimeScheduler sched;
  const SimTime before = sched.now();
  sleep_ms(5);
  EXPECT_GT(sched.now(), before);
}

TEST(RealTimeScheduler, TimerFiresOnceDue) {
  RealTimeScheduler sched;
  bool fired = false;
  sched.schedule_after(SimTime::millis(10), [&] { fired = true; });
  // Not due yet: the deadline is 10ms out.
  sched.run_due();
  EXPECT_FALSE(fired);
  sleep_ms(30);
  EXPECT_GT(sched.run_due(), 0u);
  EXPECT_TRUE(fired);
}

TEST(RealTimeScheduler, PastDeadlineFiresOnNextRunDue) {
  RealTimeScheduler sched(SimTime::seconds(10));
  bool fired = false;
  // Before the embedded clock ever advanced — clamped, not dropped.
  sched.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  sched.run_due();
  EXPECT_TRUE(fired);
}

TEST(RealTimeScheduler, CancelledTimerNeverFires) {
  RealTimeScheduler sched;
  bool fired = false;
  TimerHandle handle =
      sched.schedule_after(SimTime::millis(1), [&] { fired = true; });
  handle.cancel();
  sleep_ms(10);
  sched.run_due();
  EXPECT_FALSE(fired);
}

TEST(RealTimeScheduler, NextDeadlineReflectsPendingTimers) {
  RealTimeScheduler sched;
  SimTime when;
  EXPECT_FALSE(sched.next_deadline(&when));
  sched.schedule_after(SimTime::seconds(1), [] {});
  EXPECT_TRUE(sched.next_deadline(&when));
  EXPECT_EQ(sched.pending_timers(), 1u);
}

// --- SimTimerService ------------------------------------------------------

TEST(SimTimerService, DelegatesToSimulator) {
  Simulator sim;
  SimTimerService timers(sim);
  std::vector<int> order;
  timers.schedule_after(SimTime::seconds(2), [&] { order.push_back(2); });
  timers.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(timers.now(), sim.now());
}

// --- Loopback medium ------------------------------------------------------

TEST(Loopback, BroadcastReachesEveryOtherEndpoint) {
  LoopbackNet net({NodeId{1}, NodeId{2}, NodeId{3}});
  LoopbackTransport a(net, NodeId{1});
  LoopbackTransport b(net, NodeId{2});
  LoopbackTransport c(net, NodeId{3});
  Sink sb;
  Sink sc;
  b.add_receive_handler(&Sink::thunk, &sb);
  c.add_receive_handler(&Sink::thunk, &sc);

  a.send(heartbeat(NodeId{1}), NodeId::invalid());

  // The sender's own inbox stays empty; both listeners hear one frame.
  EXPECT_EQ(a.drain(SimTime::zero()), 0u);
  ASSERT_EQ(b.drain(SimTime::millis(7)), 1u);
  ASSERT_EQ(c.drain(SimTime::zero()), 1u);
  EXPECT_EQ(sb.seen[0].sender, NodeId{1});
  EXPECT_EQ(sb.seen[0].intended, NodeId::invalid());
  EXPECT_EQ(sb.seen[0].sent_at, SimTime::millis(7));
  const auto* hb = payload_cast<HeartbeatPayload>(sc.seen[0].payload);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->sender, NodeId{1});
  EXPECT_TRUE(hb->marked);
}

TEST(Loopback, AddressedFramesAreStillOverheard) {
  LoopbackNet net({NodeId{1}, NodeId{2}, NodeId{3}});
  LoopbackTransport a(net, NodeId{1});
  LoopbackTransport b(net, NodeId{2});
  LoopbackTransport c(net, NodeId{3});
  Sink sb;
  Sink sc;
  b.add_receive_handler(&Sink::thunk, &sb);
  c.add_receive_handler(&Sink::thunk, &sc);

  a.send(heartbeat(NodeId{1}), NodeId{2});

  // Promiscuous delivery: node 3 overhears the frame addressed to node 2.
  ASSERT_EQ(b.drain(SimTime::zero()), 1u);
  ASSERT_EQ(c.drain(SimTime::zero()), 1u);
  EXPECT_EQ(sb.seen[0].intended, NodeId{2});
  EXPECT_EQ(sc.seen[0].intended, NodeId{2});
}

TEST(Loopback, HandlersFireInRegistrationOrder) {
  LoopbackNet net({NodeId{1}, NodeId{2}});
  LoopbackTransport a(net, NodeId{1});
  LoopbackTransport b(net, NodeId{2});
  std::vector<int> order;
  struct Tag {
    std::vector<int>* order;
    int id;
  };
  Tag first{&order, 1};
  Tag second{&order, 2};
  const auto record = [](void* ctx, const Reception&) {
    auto* tag = static_cast<Tag*>(ctx);
    tag->order->push_back(tag->id);
  };
  b.add_receive_handler(record, &first);
  b.add_receive_handler(record, &second);

  a.send(heartbeat(NodeId{1}), NodeId::invalid());
  ASSERT_EQ(b.drain(SimTime::zero()), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Loopback, DarkRadioNeitherSendsNorReceives) {
  LoopbackNet net({NodeId{1}, NodeId{2}});
  LoopbackTransport a(net, NodeId{1});
  LoopbackTransport b(net, NodeId{2});
  Sink sink;
  b.add_receive_handler(&Sink::thunk, &sink);

  // Unpowered receiver: frames sent while dark are never queued.
  b.set_powered(false);
  EXPECT_FALSE(b.powered());
  a.send(heartbeat(NodeId{1}), NodeId::invalid());
  b.set_powered(true);
  EXPECT_EQ(b.drain(SimTime::zero()), 0u);

  // Unpowered sender: nothing leaves the endpoint.
  a.set_powered(false);
  a.send(heartbeat(NodeId{1}), NodeId::invalid());
  a.set_powered(true);
  EXPECT_EQ(b.drain(SimTime::zero()), 0u);
  EXPECT_TRUE(sink.seen.empty());
}

TEST(Loopback, PowerDownLosesUndrainedFrames) {
  LoopbackNet net({NodeId{1}, NodeId{2}});
  LoopbackTransport a(net, NodeId{1});
  LoopbackTransport b(net, NodeId{2});
  Sink sink;
  b.add_receive_handler(&Sink::thunk, &sink);

  a.send(heartbeat(NodeId{1}), NodeId::invalid());
  // Queued but not yet drained: a crash between reception and processing
  // drops the frame, exactly like a real radio losing its buffer.
  b.set_powered(false);
  b.set_powered(true);
  EXPECT_EQ(b.drain(SimTime::zero()), 0u);
}

TEST(Loopback, WaitReturnsWhenAFrameArrives) {
  LoopbackNet net({NodeId{1}, NodeId{2}});
  LoopbackTransport a(net, NodeId{1});
  LoopbackTransport b(net, NodeId{2});
  EXPECT_FALSE(b.wait(SimTime::zero()));  // empty inbox, no blocking
  a.send(heartbeat(NodeId{1}), NodeId::invalid());
  EXPECT_TRUE(b.wait(SimTime::zero()));
  EXPECT_TRUE(b.wait(SimTime::seconds(1)));  // non-empty: returns at once
}

TEST(Loopback, TwoThreadsExchangeFrames) {
  constexpr int kFrames = 50;
  LoopbackNet net({NodeId{10}, NodeId{20}});
  LoopbackTransport a(net, NodeId{10});
  LoopbackTransport b(net, NodeId{20});

  // Each thread owns one endpoint: sends its burst, then drains until it
  // has heard the peer's full burst — the wait()/drain() loop cfds_serve
  // runs, compressed.
  const auto worker = [](LoopbackTransport& mine, NodeId self,
                         std::atomic<int>& received) {
    Sink sink;
    mine.add_receive_handler(&Sink::thunk, &sink);
    for (int i = 0; i < kFrames; ++i) mine.send(heartbeat(self), NodeId::invalid());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (static_cast<int>(sink.seen.size()) < kFrames &&
           std::chrono::steady_clock::now() < deadline) {
      mine.wait(SimTime::millis(10));
      mine.drain(SimTime::zero());
    }
    received = static_cast<int>(sink.seen.size());
  };
  std::atomic<int> got_a{0};
  std::atomic<int> got_b{0};
  std::thread ta([&] { worker(a, NodeId{10}, got_a); });
  std::thread tb([&] { worker(b, NodeId{20}, got_b); });
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, kFrames);
  EXPECT_EQ(got_b, kFrames);
}

}  // namespace
}  // namespace cfds
