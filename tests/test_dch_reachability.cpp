// Tests for the reconstructed DCH-reachability model (the study Section 4.2
// references but omits).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dch_reachability.h"
#include "common/geometry.h"

namespace cfds::analysis {
namespace {

TEST(DchReachability, DchAtCenterReachesEveryone) {
  Rng rng(1);
  const auto result = dch_reachability(100.0, 0.0, 75, 0.1, 100, rng);
  EXPECT_DOUBLE_EQ(result.p_out_of_range, 0.0);
  EXPECT_DOUBLE_EQ(result.p_reachable(), 1.0);
}

TEST(DchReachability, OutOfRangeFractionMatchesLensComplement) {
  Rng rng(2);
  const double r = 100.0;
  const double d = 60.0;
  const auto result = dch_reachability(r, d, 75, 0.1, 100, rng);
  const double lens = lens_area(Disk{{0, 0}, r}, Disk{{d, 0}, r});
  EXPECT_NEAR(result.p_out_of_range, 1.0 - lens / (M_PI * r * r), 1e-9);
}

TEST(DchReachability, PaperClaimHighProbabilityAtDensePopulations) {
  // "unless the node population density is low and the DCH's distance from
  // the original CH is big, with high probability a DCH will be able to
  // hear from an out-of-range cluster member" (Section 4.2).
  Rng rng(3);
  const auto dense = dch_reachability(100.0, 40.0, 100, 0.1, 400, rng);
  EXPECT_GT(dense.p_reachable_given_out, 0.99);
  EXPECT_GT(dense.p_reachable(), 0.99);
}

TEST(DchReachability, DegradesWithDistanceAndSparsity) {
  Rng rng(4);
  const auto near = dch_reachability(100.0, 30.0, 75, 0.1, 300, rng);
  const auto far = dch_reachability(100.0, 90.0, 75, 0.1, 300, rng);
  EXPECT_GT(near.p_reachable_given_out, far.p_reachable_given_out);

  const auto dense = dch_reachability(100.0, 90.0, 100, 0.1, 300, rng);
  const auto sparse = dch_reachability(100.0, 90.0, 20, 0.1, 300, rng);
  EXPECT_GT(dense.p_reachable_given_out, sparse.p_reachable_given_out);
}

TEST(DchReachability, MoreLossLessReachability) {
  Rng rng(5);
  const auto low = dch_reachability(100.0, 70.0, 30, 0.05, 300, rng);
  const auto high = dch_reachability(100.0, 70.0, 30, 0.5, 300, rng);
  EXPECT_GT(low.p_reachable_given_out, high.p_reachable_given_out);
}

TEST(DchReachability, UnconditionalCombinesBothTerms) {
  Rng rng(6);
  const auto result = dch_reachability(100.0, 60.0, 50, 0.2, 200, rng);
  const double expected =
      (1.0 - result.p_out_of_range) +
      result.p_out_of_range * result.p_reachable_given_out;
  EXPECT_DOUBLE_EQ(result.p_reachable(), expected);
  EXPECT_GE(result.p_reachable(), result.p_reachable_given_out);
}

}  // namespace
}  // namespace cfds::analysis
