// Tests for the SWIM-style baseline.

#include <gtest/gtest.h>

#include "baseline/swim.h"
#include "net/topology.h"

namespace cfds {
namespace {

struct SwimDeployment {
  explicit SwimDeployment(std::size_t n, double loss_p = 0.0,
                          std::uint64_t seed = 3) {
    NetworkConfig config;
    config.seed = seed;
    network = std::make_unique<Network>(
        config, loss_p == 0.0
                    ? std::unique_ptr<LossModel>(new PerfectLinks())
                    : std::unique_ptr<LossModel>(new BernoulliLoss(loss_p)));
    Rng placement(seed);
    network->add_nodes(uniform_rect(n, 400.0, 300.0, placement));
    swim = std::make_unique<SwimService>(*network, SwimConfig{});
  }

  std::unique_ptr<Network> network;
  std::unique_ptr<SwimService> swim;
};

TEST(Swim, QuietNetworkDeclaresNobody) {
  SwimDeployment d(80);
  d.swim->run_periods(15, SimTime::zero());
  for (SwimAgent* agent : d.swim->agents()) {
    EXPECT_TRUE(agent->declared_failed().empty()) << agent->id();
    EXPECT_EQ(agent->false_declarations(), 0u);
  }
}

TEST(Swim, CrashedNeighborIsEventuallyDeclared) {
  SwimDeployment d(80);
  d.swim->run_periods(4, SimTime::zero());  // learn the neighbourhoods
  const NodeId victim{40};
  d.network->crash(victim);
  d.swim->run_periods(25, d.network->simulator().now());
  // Probing is randomized, so per-agent detection times vary; with 25
  // periods and piggyback dissemination nearly everyone in the victim's
  // component should know.
  EXPECT_GT(d.swim->declaration_coverage(victim), 0.7);
}

TEST(Swim, PiggybackSpreadsBeyondOneHop) {
  // A line: only adjacent nodes hear each other; the far end must learn of
  // a crash at the near end through piggybacked declarations.
  NetworkConfig config;
  config.seed = 9;
  Network network(config, std::make_unique<PerfectLinks>());
  for (int i = 0; i < 8; ++i) network.add_node({double(i) * 80.0, 0.0});
  SwimService swim(network, SwimConfig{});
  swim.run_periods(4, SimTime::zero());
  network.crash(NodeId{0});
  swim.run_periods(40, network.simulator().now());
  EXPECT_TRUE(swim.agent_for(NodeId{7}).considers_failed(NodeId{0}));
}

TEST(Swim, IndirectProbesSaveLossyDirectPath) {
  // Heavy loss: direct pings often die, but k indirect probes through
  // different links keep false declarations low relative to the probe
  // volume (each node probes every period).
  SwimDeployment d(80, /*loss_p=*/0.3, /*seed=*/17);
  d.swim->run_periods(25, SimTime::zero());
  std::uint64_t false_total = 0;
  for (SwimAgent* agent : d.swim->agents()) {
    false_total += agent->false_declarations();
  }
  // 80 nodes x 25 probes = 2000 probe opportunities; suspicion hysteresis
  // plus indirect probing must keep false declarations to a tiny fraction.
  EXPECT_LT(false_total, 40u);
}

TEST(Swim, AliveContactRefutesSuspicionAndDeclaration) {
  SwimDeployment d(30);
  d.swim->run_periods(4, SimTime::zero());
  // Force a wrong declaration into one agent, then let it hear the victim.
  SwimAgent& agent = d.swim->agent_for(NodeId{0});
  const NodeId victim{1};
  // Simulate rumour arrival via piggyback path by injecting from a peer:
  // crash-free network, so any declaration is false.
  d.swim->run_periods(1, d.network->simulator().now());
  EXPECT_FALSE(agent.considers_failed(victim));
  // (refutation is exercised continuously: no false declarations persist)
  d.swim->run_periods(10, d.network->simulator().now());
  EXPECT_FALSE(agent.considers_failed(victim));
}

}  // namespace
}  // namespace cfds
